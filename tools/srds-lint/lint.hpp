// srds-lint — repo-specific protocol-invariant static analysis.
//
// The paper's quantitative claims survive reproduction only under source-
// level disciplines that ordinary compilers never check:
//
//   * determinism — every protocol path must be a pure function of the run
//     seed (the determinism guard in tests/trace_test.cpp checks one trace
//     at runtime; rule D1 checks every path at the source level),
//   * accounted communication — every byte a party emits must flow through
//     the simulator's accounting channel with an explicit MsgKind tag, or
//     the per-kind breakdowns behind the Table 1 comparison silently leak
//     traffic into the untagged bucket (rule B1),
//   * one-directional layering — protocol layers compose common -> crypto
//     -> net -> {srds,tree,snark,lb} -> {consensus,ba,mpc} (the paper's
//     Figures 1–2 composition); rule L1 checks every include edge against
//     the checked-in module DAG in tools/srds-lint/layers.toml, and
//   * validated adversarial input — bytes a party acts on arrive only
//     through bounds-checked deserialization (the Theorem 1.3/1.4 attack
//     surface); rule T1 flags raw payload-byte reads that skip it.
//
// The checker is a token-level scanner (no libclang): C++ is lexed into
// identifiers/punctuation with line numbers (tools/srds-lint/lex.hpp),
// comments and strings are stripped (so `// rand()` never fires), and each
// rule is one function over the token stream plus the file's repo-relative
// path — except L1, which is a whole-program pass over the include graph
// of every scanned file (driven by the exported compile_commands.json in
// CI). That is deliberately AST-free — the invariants are lexical enough
// that token context decides, and the zero-dependency build keeps the
// linter cheap enough to run on every CI push.
//
// Rules (see docs/static_analysis.md for the paper-level rationale):
//   D1  nondeterminism sources in protocol code: rand()/srand(),
//       std::random_device outside src/common/rng, wall-clock reads
//       (time(), clock(), gettimeofday(), chrono::system_clock), and any
//       unordered_map/unordered_set use inside src/ba, src/consensus,
//       src/srds, src/tree (iteration order would leak into round order).
//   B1  raw `Message` construction outside src/net: protocol code must use
//       the make_msg factory (common/message.hpp) so the MsgKind tag is
//       always an explicit, reviewed decision.
//   S1  every type declaring `serialize` must declare a matching
//       `deserialize` in the same type, and (when a test corpus is given)
//       be referenced by at least one test (the round-trip coverage rule).
//   H1  header hygiene: headers start with `#pragma once` (or a classic
//       include guard) and never contain `using namespace`.
//   L1  layering: cross-module includes must follow the module DAG
//       declared in layers.toml (graph.hpp). No inline allow() — kept
//       back-edges are declared in the manifest with a justification.
//   T1  adversarial-input taint: payload-byte reads without a prior
//       deserialize/validate in the same function body (taint.hpp).
//   P1  hot-path hygiene: no throw/new/std::function in functions marked
//       `// srds-lint: hotpath` (taint.hpp). Markers may name their target
//       (`hotpath(Simulator::deliver)`); stale markers are findings.
//   C1  concurrency readiness (callgraph.hpp): functions reachable from a
//       `// srds-lint: shard-root` marker or a shard_roots.toml [roots]
//       entry must be free of file-scope mutable state, function-local
//       statics, unordered-container iteration, unseeded RNG engines and
//       singleton accessors — each finding carries the call path from the
//       root. This is the machine-checked gate for sharding the simulator
//       (ROADMAP item 1).
//   P2  interprocedural hot-path hygiene: the P1 discipline propagated
//       through the call graph from every hotpath-marked function.
//   T2  interprocedural taint: payload bytes handed to a helper before
//       validation, where the helper (transitively) reads the bytes before
//       its own deserialize/validate; reported with the flow path.
//   C2  lock discipline (locks.hpp): `// srds-lint: guarded_by(mu)` field
//       annotations checked interprocedurally — unheld access from a
//       public entry point (with the unlocked call path), double-lock of a
//       held mutex, and lock-order cycles over the whole-program
//       lock-order graph (exported as LINT_lockorder.dot).
//   C3  atomics audit (locks.hpp): non-atomic RMW on locks.toml [shared]
//       fields, shared fields that are neither atomic nor guarded,
//       memory_order_relaxed outside the justified [allow-relaxed] list,
//       and `confined(owner)`-annotated state reached from C1 shard roots.
//   A0  malformed suppression: `srds-lint: allow(...)` without the
//       mandatory justification text, or naming an unknown rule. A
//       malformed suppression never suppresses.
//
// Suppressions: `// srds-lint: allow(D1): <justification>` suppresses rule
// D1 on the same line (trailing comment) or, for a comment-only line, on
// the next line containing code. The justification after "):" is mandatory.
// L1 is not inline-suppressible by design.
//
// Ratchet: baseline.hpp records the current blocking findings in
// LINT_BASELINE.json; with --baseline, only *new* violations (and stale
// baseline entries) fail, so the count can only go down.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace srds::lint {

enum class Severity { kOff, kWarn, kError };

const char* severity_name(Severity s);

/// One rule of the engine. The table lives in rules(); adding an invariant
/// means adding a row there and one check function in lint.cpp (per-file
/// rules) or its own pass file (cross-TU rules — see graph.cpp).
struct RuleInfo {
  const char* id;       // "D1"
  const char* title;    // one-line summary for --list-rules
  Severity default_severity;
};

/// The rule table, in report order.
const std::vector<RuleInfo>& rules();

/// nullptr when `id` names no rule.
const RuleInfo* find_rule(const std::string& id);

struct Finding {
  std::string file;  // repo-relative path, '/'-separated
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
  bool suppressed = false;
  std::string justification;  // non-empty iff suppressed
};

struct Config {
  /// Per-rule severity overrides (rule id -> severity), e.g. from
  /// `--severity D1=warn`. Unlisted rules keep their default.
  std::vector<std::pair<std::string, Severity>> overrides;

  /// Concatenated contents of the test corpus. When non-empty, S1
  /// additionally requires every serializable type name to appear in it
  /// (the round-trip test reference check).
  std::string test_corpus;

  /// Contents of the layers.toml module-DAG manifest. When non-empty,
  /// lint_files additionally runs the cross-TU L1 layering pass over the
  /// whole file set (a parse failure is itself reported as an L1 finding
  /// against `layers_manifest_path`).
  std::string layers_manifest;
  std::string layers_manifest_path = "layers.toml";

  /// Contents of the shard_roots.toml manifest ([roots] functions +
  /// [allow] escape hatch for the call-graph passes). The C1/P2/T2 passes
  /// run in lint_files regardless (inline markers alone can seed them); a
  /// parse failure is reported as a C1 finding against
  /// `shard_manifest_path`.
  std::string shard_manifest;
  std::string shard_manifest_path = "shard_roots.toml";

  /// Contents of the locks.toml manifest ([shared] fields, [allow-relaxed]
  /// justifications, [allow] escape hatch for the C2/C3 concurrency
  /// passes). The passes run in lint_files regardless (inline guarded_by /
  /// confined annotations alone can seed them); a parse failure is
  /// reported as a C2 finding against `locks_manifest_path`.
  std::string locks_manifest;
  std::string locks_manifest_path = "locks.toml";

  Severity severity_of(const std::string& rule) const;
};

/// Call-graph census for the LINT_*.json stats block (deterministic —
/// counts, not timings).
struct CallGraphStats {
  std::size_t functions = 0;         // definitions in the scanned set
  std::size_t call_edges = 0;        // resolved caller->callee edges
  std::size_t external_calls = 0;    // sites naming no scanned definition
  std::size_t shard_roots = 0;       // C1 roots (markers + manifest)
  std::size_t hotpath_funcs = 0;     // P1/P2 roots (hotpath markers)
  std::size_t shard_reachable = 0;   // definitions reachable from C1 roots
  std::size_t hotpath_reachable = 0; // definitions reachable from P2 roots
  std::size_t allowed_skips = 0;     // traversal stops at [allow] entries
};

/// Locks-pass census for the LINT_*.json stats block (deterministic).
struct LockStats {
  std::size_t annotated_fields = 0;  // guarded_by/confined markers bound to fields
  std::size_t lock_edges = 0;        // distinct lock-order graph edges
  std::size_t order_cycles = 0;      // distinct lock-order cycles
  std::size_t relaxed_allows = 0;    // relaxed sites matched by [allow-relaxed]
};

/// Lint a single file. `path` is the repo-relative logical path — rule
/// scoping (protocol dirs, src/net, src/common/rng, header rules) is
/// decided from it, so tests can present fixture content under any path.
/// Runs the per-file rules only (D1/B1/S1/H1/T1/P1/A0), not L1. Per-file
/// rules are protocol-code rules: paths outside src/ get no findings (they
/// still feed the L1 graph in lint_files).
std::vector<Finding> lint_file(const std::string& path, const std::string& content,
                               const Config& cfg);

/// Lint many (path, content) pairs — per-file rules, the cross-TU C1/P2/T2
/// call-graph passes (roots from inline markers plus cfg.shard_manifest),
/// the C2/C3 concurrency passes (annotations plus cfg.locks_manifest) and,
/// when cfg.layers_manifest is set, the L1 layering pass. Findings sorted
/// by (file, line, rule). `cg_stats` / `lock_stats`, when given, receive
/// the call-graph and locks-pass censuses for the JSON stats block.
std::vector<Finding> lint_files(
    const std::vector<std::pair<std::string, std::string>>& files, const Config& cfg,
    CallGraphStats* cg_stats = nullptr, LockStats* lock_stats = nullptr);

/// True if any finding is an unsuppressed error (the CI gate / exit code).
bool has_blocking(const std::vector<Finding>& findings);

/// Deterministic JSON artifact:
///   {"tool":"srds-lint","schema":2,
///    "summary":{"files":F,"errors":E,"warnings":W,"suppressed":S},
///    "findings":[{"file","line","rule","severity","message","suppressed",
///                 "justification"?}...],
///    "stats":{...}?}
/// Byte-identical across runs on identical input (no timestamps; findings
/// pre-sorted by lint_files). `stats`, when given, is attached verbatim —
/// the CLI passes the obs metrics registry export there (per-rule counts
/// are deterministic; pass timings obviously are not, same contract as the
/// BENCH_*.json `elapsed` fields).
obs::Json findings_json(const std::vector<Finding>& findings, std::size_t files_scanned,
                        const obs::Json* stats = nullptr);

/// Human report, one `path:line: severity: [RULE] message` per finding
/// plus a one-line summary.
std::string human_report(const std::vector<Finding>& findings, std::size_t files_scanned,
                         bool verbose_suppressed);

}  // namespace srds::lint

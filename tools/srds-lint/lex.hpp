// srds-lint internal lexer and path-scoping helpers.
//
// Shared by the per-file rule passes (lint.cpp), the adversarial-input
// taint / hot-path passes (taint.cpp) and the cross-TU dependency graph
// (graph.cpp). C++ is lexed into identifiers/punctuation with line
// numbers; comments and strings are stripped from the token stream (so
// `// rand()` never fires a rule) but kept on the side — comments carry
// suppressions and `srds-lint: hotpath` markers, preprocessor directives
// carry the include edges the layering pass walks.
//
// This header is tool-internal: nothing under src/ may include it.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace srds::lint {

struct Tok {
  enum Kind { kIdent, kPunct, kNum, kStr };
  Kind kind;
  std::string text;
  std::size_t line;
};

struct Comment {
  std::size_t line;  // line the comment starts on
  std::string text;
};

struct PpDirective {
  std::size_t line;
  std::string text;  // full directive, continuations joined, '#' included
};

struct Lexed {
  std::vector<Tok> toks;
  std::vector<Comment> comments;
  std::vector<PpDirective> directives;
  std::set<std::size_t> code_lines;  // lines carrying at least one token
};

Lexed lex(const std::string& s);

/// '\\' -> '/', leading "./" stripped.
std::string normalize_path(std::string p);

/// True when `path` lies under directory `dir` (e.g. under("src/ba/x.cpp",
/// "src/ba")), matching a leading or embedded directory prefix.
bool path_under(const std::string& path, const std::string& dir);

bool is_header_path(const std::string& path);

/// The protocol directories rule D1/T1 scope to.
bool in_protocol_dir(const std::string& path);

std::string trim(const std::string& s);

/// Quoted-include target of a preprocessor directive: `#include "x/y.hpp"`
/// -> "x/y.hpp"; empty for angle-bracket and non-include directives.
std::string quoted_include_target(const PpDirective& d);

}  // namespace srds::lint

#include "callgraph.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace srds::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kControl = {"if",    "for",    "while",  "switch",
                                                "catch", "return", "sizeof", "alignof",
                                                "decltype"};
  return kControl.count(s) != 0;
}

/// Identifiers that are never a callee name nor the type of a
/// `Type name(args)` declaration-style constructor call.
bool is_non_callee_keyword(const std::string& s) {
  static const std::set<std::string> k = {
      "return",  "throw",     "new",      "delete",   "else",     "do",
      "case",    "goto",      "break",    "continue", "co_return", "co_await",
      "co_yield", "operator", "typeid",   "static_assert", "alignas", "noexcept",
      "const",   "constexpr", "static",   "inline",   "virtual",  "explicit",
      "typename", "template", "using",    "typedef",  "public",   "private",
      "protected", "assert"};
  return is_control_keyword(s) || k.count(s) != 0;
}

bool is_unordered_type(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
         s == "unordered_multiset";
}

/// std <random> engine types whose construction inside shard-reachable code
/// sidesteps the seeded src/common/rng chain. random_device/rand/srand are
/// rule D1's (everywhere, not just reachable code) — not duplicated here.
bool is_rng_engine(const std::string& s) {
  static const std::set<std::string> k = {
      "mt19937",       "mt19937_64",    "minstd_rand", "minstd_rand0",
      "default_random_engine", "knuth_b", "ranlux24",  "ranlux48",
      "ranlux24_base", "ranlux48_base"};
  return k.count(s) != 0;
}

bool is_iter_member(const std::string& s) {
  return s == "begin" || s == "end" || s == "cbegin" || s == "cend" || s == "rbegin" ||
         s == "rend";
}

/// Member names that read as STL container/string/smart-pointer API. A
/// member call through a receiver whose type a token scanner cannot see
/// would otherwise name-match any class that mimics STL naming (obs::Json's
/// push_back/set, say) and drag unrelated code into the reachable set —
/// these stay opaque (external) instead.
bool is_opaque_member(const std::string& s) {
  static const std::set<std::string> k = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front", "push",
      "pop",       "top",          "insert",   "emplace",    "erase",     "clear",
      "resize",    "reserve",      "shrink_to_fit", "at",    "find",      "count",
      "contains",  "lower_bound",  "upper_bound", "equal_range", "empty", "size",
      "length",    "capacity",     "substr",   "append",     "compare",   "c_str",
      "str",       "data",         "front",    "back",       "begin",     "end",
      "cbegin",    "cend",         "rbegin",   "rend",       "get",       "reset",
      "release",   "swap",         "assign",   "set",        "dump",      "value",
      "has_value", "value_or",     "load",     "store",      "exchange",  "fetch_add",
      "fetch_sub", "lock",         "unlock",   "try_lock",   "first",     "second"};
  return k.count(s) != 0;
}

bool is_rng_home(const std::string& path) {
  return path_under(path, "src/common") && path.find("/rng.") != std::string::npos;
}

// Mirrors taint.cpp's T1 notion of a validation point / byte read.
bool is_validation_ident(const std::string& s) {
  if (s == "untag_body" || s == "Reader") return true;
  return s.find("deserialize") != std::string::npos || s.find("validate") != std::string::npos;
}

bool is_byte_read_member(const std::string& s) {
  static const std::set<std::string> kReads = {"data",  "begin",  "end",  "front",
                                               "back",  "rbegin", "rend", "cbegin",
                                               "cend"};
  return kReads.count(s) != 0;
}

bool in_taint_scope(const std::string& path) {
  return path_under(path, "src/ba") || path_under(path, "src/consensus") ||
         path_under(path, "src/srds") || path_under(path, "src/mpc");
}

// ---------------------------------------------------------------------------
// Per-file extraction.
// ---------------------------------------------------------------------------

/// Parameter names from the declarator's (...) token range, in order.
std::vector<std::string> extract_params(const Lexed& lx, const FuncBody& fb) {
  const std::vector<Tok>& toks = lx.toks;
  std::vector<std::string> out;
  if (fb.lparen_tok + 1 >= fb.rparen_tok || fb.rparen_tok >= toks.size()) return out;
  int depth = 0;
  bool in_default = false;  // past a top-level '=' (default argument)
  std::string last_ident;
  auto finish = [&] {
    out.push_back(last_ident);  // "" for unnamed params keeps positions aligned
    last_ident.clear();
    in_default = false;
  };
  for (std::size_t i = fb.lparen_tok + 1; i < fb.rparen_tok; ++i) {
    const Tok& t = toks[i];
    if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<") ++depth;
    else if (t.text == ")" || t.text == "]" || t.text == "}" || t.text == ">") --depth;
    else if (depth == 0 && t.text == ",") { finish(); continue; }
    else if (depth == 0 && t.text == "=") { in_default = true; continue; }
    if (!in_default && depth == 0 && t.kind == Tok::kIdent) last_ident = t.text;
  }
  finish();
  if (out.size() == 1 && out[0].empty()) out.clear();  // `()` / `(void)`-ish
  return out;
}

/// Call sites inside one body: `name(`, `Qual::name(`, `Type var(args)`
/// constructor calls, and make_unique/make_shared<T>(...).
std::vector<CallSite> extract_calls(const Lexed& lx, const FuncBody& fb) {
  const std::vector<Tok>& toks = lx.toks;
  std::vector<CallSite> out;
  for (std::size_t i = fb.open_tok + 1; i < fb.close_tok && i + 1 < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const Tok& next = toks[i + 1];
    if ((t.text == "make_unique" || t.text == "make_shared") && next.text == "<") {
      // Constructor call on the first template argument's last name
      // component: make_unique<srds::CoinTossProto>(...) -> CoinTossProto.
      int depth = 0;
      std::string last;
      for (std::size_t j = i + 1; j < fb.close_tok && j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">") { if (--depth == 0) break; }
        else if (depth == 1 && toks[j].text == ",") break;
        else if (depth == 1 && toks[j].kind == Tok::kIdent) last = toks[j].text;
      }
      if (!last.empty()) out.push_back(CallSite{t.line, i, last, ""});
      continue;
    }
    if (next.text != "(") continue;
    if (is_non_callee_keyword(t.text)) continue;
    const Tok* prev = (i > 0) ? &toks[i - 1] : nullptr;
    if (prev && (prev->text == "." || prev->text == "->") && is_opaque_member(t.text)) {
      continue;
    }
    if (prev && prev->text == "::" && i >= 2 && toks[i - 2].kind == Tok::kIdent) {
      // `std::min(a, b)` must not fall through the resolution chain onto a
      // same-named member (Histogram::min, say) — std is never a project
      // qualifier, so the call is opaque.
      if (toks[i - 2].text == "std") continue;
      out.push_back(CallSite{t.line, i, t.text, toks[i - 2].text});
      continue;
    }
    if (prev && prev->kind == Tok::kIdent && !is_non_callee_keyword(prev->text)) {
      // `Type var(args)` declaration: the call this makes is Type's
      // constructor, and `var` itself is not a callee.
      out.push_back(CallSite{t.line, i, prev->text, ""});
      continue;
    }
    out.push_back(CallSite{t.line, i, t.text, ""});
  }
  return out;
}

/// Mutable namespace-scope variable declarations of a file. Statements are
/// scanned outside every function and class body; anything const/constexpr,
/// type-introducing, or involving parentheses is skipped, so the survivors
/// are plain `Type name;` / `Type name = init;` mutable state.
void collect_globals(const Lexed& lx, const std::vector<FuncBody>& funcs,
                     std::map<std::string, std::size_t>& out) {
  const std::vector<Tok>& toks = lx.toks;
  std::vector<char> in_body(toks.size(), 0);
  std::vector<char> body_open(toks.size(), 0);
  for (const FuncBody& fb : funcs) {
    for (std::size_t k = fb.open_tok; k <= fb.close_tok && k < toks.size(); ++k) in_body[k] = 1;
    if (fb.open_tok < toks.size()) body_open[fb.open_tok] = 1;
  }
  enum Kind { kNs, kClass, kOther };
  std::vector<Kind> scopes;
  std::vector<const Tok*> stmt;
  auto collecting = [&] {
    for (Kind k : scopes) {
      if (k != kNs) return false;
    }
    return true;
  };
  auto evaluate = [&] {
    if (stmt.size() < 2) return;
    static const std::set<std::string> kSkip = {
        "const",  "constexpr", "using",   "typedef",  "extern",  "friend",
        "template", "operator", "static_assert", "enum", "struct", "class",
        "union",  "namespace", "requires", "concept"};
    std::size_t idents = 0;
    for (const Tok* t : stmt) {
      if (t->text == "(") return;
      if (t->kind == Tok::kIdent) {
        if (kSkip.count(t->text)) return;
        ++idents;
      }
    }
    if (idents < 2) return;
    // Name: the identifier before '=' (skipping array extents), else the
    // last identifier of the declaration.
    std::size_t limit = stmt.size();
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      if (stmt[k]->text == "=") {
        limit = k;
        break;
      }
    }
    std::size_t k = limit;
    while (k > 0) {
      const Tok* t = stmt[k - 1];
      if (t->text == "]" || t->text == "[" || t->kind == Tok::kNum) {
        --k;
        continue;
      }
      break;
    }
    if (k == 0 || stmt[k - 1]->kind != Tok::kIdent) return;
    const Tok* name = stmt[k - 1];
    out.emplace(name->text, name->line);  // first declaration wins
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (in_body[i]) {
      if (body_open[i]) stmt.clear();  // `void f() {` left a dangling declarator
      continue;
    }
    if (t.text == "{") {
      // Classify the scope this brace opens by its head.
      std::size_t b = i;
      Kind kind = kOther;
      for (int steps = 0; b > 0 && steps < 64; ++steps) {
        const Tok& p = toks[b - 1];
        if (p.kind == Tok::kIdent) {
          if (p.text == "namespace") {
            kind = kNs;
            break;
          }
          if (p.text == "class" || p.text == "struct" || p.text == "union" ||
              p.text == "enum") {
            kind = kClass;
            break;
          }
          --b;
          continue;
        }
        if (p.kind == Tok::kNum || p.text == "::" || p.text == "<" || p.text == ">" ||
            p.text == ":" || p.text == "," || p.text == "&" || p.text == "*") {
          --b;
          continue;
        }
        break;
      }
      scopes.push_back(kind);
      if (kind != kOther) stmt.clear();
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) {
        if (scopes.back() != kOther) stmt.clear();
        scopes.pop_back();
      }
      continue;
    }
    if (!collecting()) continue;
    if (t.text == ";") {
      evaluate();
      stmt.clear();
      continue;
    }
    stmt.push_back(&t);
  }
}

/// Names declared anywhere in the file (members included) with an
/// unordered container type.
void collect_unordered_vars(const Lexed& lx, std::set<std::string>& out) {
  const std::vector<Tok>& toks = lx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !is_unordered_type(toks[i].text)) continue;
    if (toks[i + 1].text != "<") continue;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">" && --depth == 0) { ++j; break; }
    }
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*")) ++j;
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) continue;
    if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;  // function decl
    out.insert(toks[j].text);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Graph construction + resolution.
// ---------------------------------------------------------------------------

std::vector<std::size_t> CallGraph::resolve(const FuncDef& caller, const CallSite& cs) const {
  auto it = by_name.find(cs.name);
  if (it == by_name.end()) return {};
  const std::vector<std::size_t>& cands = it->second;
  if (!cs.qual_hint.empty()) {
    std::vector<std::size_t> hinted;
    const std::string want = cs.qual_hint + "::" + cs.name;
    for (std::size_t d : cands) {
      const std::string& q = defs[d].body.qual;
      if (q == want || (q.size() >= want.size() + 2 &&
                        q.compare(q.size() - want.size() - 2, 2, "::") == 0 &&
                        q.compare(q.size() - want.size(), want.size(), want) == 0)) {
        hinted.push_back(d);
      }
    }
    if (!hinted.empty()) return hinted;
  }
  // Same-class members: caller `A::f` calling `g` prefers `A::g`.
  const std::string& cq = caller.body.qual;
  std::size_t sep = cq.rfind("::");
  if (sep != std::string::npos) {
    const std::string cls = cq.substr(0, sep);
    std::vector<std::size_t> same_class;
    for (std::size_t d : cands) {
      const std::string& q = defs[d].body.qual;
      std::size_t s2 = q.rfind("::");
      if (s2 != std::string::npos && q.compare(0, s2, cls) == 0) same_class.push_back(d);
    }
    if (!same_class.empty()) return same_class;
  }
  std::vector<std::size_t> same_file;
  for (std::size_t d : cands) {
    if (defs[d].file == caller.file) same_file.push_back(d);
  }
  if (!same_file.empty()) return same_file;
  return cands;  // conservative over-approximation: every def with the name
}

CallGraph build_call_graph(
    const std::vector<std::pair<std::string, std::string>>& files) {
  CallGraph cg;
  for (const auto& [raw_path, content] : files) {
    const std::string path = normalize_path(raw_path);
    if (!path_under(path, "src")) continue;
    FileCtx fc;
    fc.path = path;
    fc.lx = lex(content);
    const std::vector<FuncBody> funcs = function_bodies(fc.lx);
    collect_globals(fc.lx, funcs, fc.globals);
    collect_unordered_vars(fc.lx, fc.unordered_vars);
    const std::size_t file_idx = cg.files.size();
    for (const FuncBody& fb : funcs) {
      FuncDef def;
      def.file = file_idx;
      def.body = fb;
      def.params = extract_params(fc.lx, fb);
      def.calls = extract_calls(fc.lx, fb);
      cg.by_name[fb.name].push_back(cg.defs.size());
      cg.defs.push_back(std::move(def));
    }
    cg.files.push_back(std::move(fc));
  }
  // External-call census: sites whose name resolves to no scanned def.
  for (const FuncDef& def : cg.defs) {
    for (const CallSite& cs : def.calls) {
      if (cg.by_name.find(cs.name) == cg.by_name.end()) ++cg.external_calls;
    }
  }
  return cg;
}

// ---------------------------------------------------------------------------
// shard_roots.toml.
// ---------------------------------------------------------------------------

bool parse_shard_manifest(const std::string& text, ShardManifest& out, std::string& error) {
  out = ShardManifest{};
  std::string section;
  bool in_array = false;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string line = text.substr(start, end == std::string::npos ? std::string::npos
                                                                   : end - start);
    start = (end == std::string::npos) ? text.size() + 1 : end + 1;
    ++lineno;
    // Strip a '#' comment outside quotes.
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (line[i] == '#' && !quoted) {
        line = line.substr(0, i);
        break;
      }
    }
    line = trim(line);
    if (line.empty()) continue;
    auto fail = [&](const std::string& why) {
      error = "line " + std::to_string(lineno) + ": " + why;
      return false;
    };
    if (in_array) {
      for (std::size_t i = 0; i < line.size();) {
        if (line[i] == '"') {
          std::size_t close = line.find('"', i + 1);
          if (close == std::string::npos) return fail("unterminated string");
          out.roots.push_back(line.substr(i + 1, close - i - 1));
          i = close + 1;
        } else if (line[i] == ']') {
          in_array = false;
          break;
        } else if (line[i] == ',' || line[i] == ' ' || line[i] == '\t') {
          ++i;
        } else {
          return fail("unexpected character in functions array");
        }
      }
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') return fail("malformed section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "roots" && section != "allow") {
        return fail("unknown section '" + section + "' (expected [roots] or [allow])");
      }
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected `key = value`");
    std::string key = trim(line.substr(0, eq));
    std::string val = trim(line.substr(eq + 1));
    if (key.size() >= 2 && key.front() == '"' && key.back() == '"') {
      key = key.substr(1, key.size() - 2);
    }
    if (section == "roots") {
      if (key != "functions") return fail("unknown [roots] key '" + key + "'");
      if (val.empty() || val.front() != '[') return fail("functions must be an array");
      in_array = true;
      // Re-feed the remainder of this line through the array scanner.
      for (std::size_t i = 1; i < val.size();) {
        if (val[i] == '"') {
          std::size_t close = val.find('"', i + 1);
          if (close == std::string::npos) return fail("unterminated string");
          out.roots.push_back(val.substr(i + 1, close - i - 1));
          i = close + 1;
        } else if (val[i] == ']') {
          in_array = false;
          break;
        } else if (val[i] == ',' || val[i] == ' ' || val[i] == '\t') {
          ++i;
        } else {
          return fail("unexpected character in functions array");
        }
      }
    } else if (section == "allow") {
      if (val.size() < 2 || val.front() != '"' || val.back() != '"') {
        return fail("allow entry '" + key + "' needs a quoted justification");
      }
      std::string just = val.substr(1, val.size() - 2);
      if (trim(just).empty()) {
        return fail("allow entry '" + key + "' needs a non-empty justification");
      }
      out.allows.emplace_back(key, trim(just));
    } else {
      return fail("entry outside any section");
    }
  }
  if (in_array) {
    error = "unterminated functions array";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Reachability.
// ---------------------------------------------------------------------------

Reach reach_from(const CallGraph& cg, const std::vector<std::size_t>& roots,
                 const std::set<std::size_t>& allowed) {
  Reach r;
  r.parent.assign(cg.defs.size(), kNpos);
  r.root.assign(cg.defs.size(), kNpos);
  r.vis.assign(cg.defs.size(), 0);
  std::deque<std::size_t> q;
  for (std::size_t root : roots) {
    if (r.vis[root]) continue;
    r.vis[root] = 1;
    r.root[root] = root;
    q.push_back(root);
  }
  while (!q.empty()) {
    std::size_t d = q.front();
    q.pop_front();
    for (const CallSite& cs : cg.defs[d].calls) {
      for (std::size_t cal : cg.resolve(cg.defs[d], cs)) {
        if (allowed.count(cal)) {
          ++r.allowed_skips;
          continue;
        }
        if (r.vis[cal]) continue;
        r.vis[cal] = 1;
        r.parent[cal] = d;
        r.root[cal] = r.root[d];
        q.push_back(cal);
      }
    }
  }
  return r;
}

std::string call_path(const CallGraph& cg, const Reach& r, std::size_t d) {
  std::vector<std::string> chain;
  for (std::size_t i = d; i != kNpos; i = r.parent[i]) {
    chain.push_back(cg.defs[i].body.qual);
    if (chain.size() > 24) {
      chain.push_back("...");
      break;
    }
  }
  std::reverse(chain.begin(), chain.end());
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i) out += " -> ";
    out += chain[i];
  }
  return out;
}

void shard_roots_and_allows(const CallGraph& cg, const ShardManifest* manifest,
                            std::set<std::size_t>& roots,
                            std::set<std::size_t>& allowed) {
  std::size_t di = 0;
  for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
    std::vector<FuncBody> funcs;
    const std::size_t base = di;
    while (di < cg.defs.size() && cg.defs[di].file == fi) {
      funcs.push_back(cg.defs[di].body);
      ++di;
    }
    for (const Marker& m : parse_markers(cg.files[fi].lx)) {
      if (m.kind != "shard-root") continue;
      std::string err;
      const std::size_t local = resolve_marker(m, funcs, &err);
      if (local != static_cast<std::size_t>(-1)) roots.insert(base + local);
    }
  }
  if (manifest) {
    for (const std::string& name : manifest->roots) {
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (marker_name_matches(name, cg.defs[d].body)) roots.insert(d);
      }
    }
    for (const auto& [name, just] : manifest->allows) {
      (void)just;
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (marker_name_matches(name, cg.defs[d].body)) allowed.insert(d);
      }
    }
  }
}

namespace {

void add(std::vector<Finding>& out, const std::string& file, std::size_t line,
         const char* rule, std::string msg) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(msg);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// C1 body scans.
// ---------------------------------------------------------------------------

void c1_scan_def(const CallGraph& cg, const Reach& r, std::size_t di,
                 std::vector<Finding>& out) {
  const FuncDef& def = cg.defs[di];
  const FileCtx& fc = cg.files[def.file];
  const std::vector<Tok>& toks = fc.lx.toks;
  const FuncBody& fb = def.body;
  const std::string where = "shard-reachable function '" + fb.qual + "' (call path: " +
                            call_path(cg, r, di) + ")";

  std::set<std::string> flagged_globals;
  for (std::size_t i = fb.open_tok + 1; i < fb.close_tok && i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const Tok* prev = (i > 0) ? &toks[i - 1] : nullptr;
    const Tok* next = (i + 1 < toks.size()) ? &toks[i + 1] : nullptr;
    const bool member_access = prev && (prev->text == "." || prev->text == "->");

    // Function-local static mutable state: shared across every party the
    // shard executes.
    if (t.text == "static") {
      bool is_const = false;
      std::size_t name_tok = kNpos;
      for (std::size_t j = i + 1; j < fb.close_tok && j < i + 32 && j < toks.size(); ++j) {
        const std::string& x = toks[j].text;
        if (x == ";" || x == "=" || x == "{" || x == "(") break;
        if (x == "const" || x == "constexpr") is_const = true;
        if (toks[j].kind == Tok::kIdent) name_tok = j;
      }
      if (!is_const && name_tok != kNpos) {
        add(out, fc.path, t.line, "C1",
            "function-local static '" + toks[name_tok].text + "' in " + where +
                "; function statics are shared across every party a shard executes and "
                "break deterministic sharding");
      }
      continue;
    }

    // File-scope mutable state access.
    if (!member_access && fc.globals.count(t.text) &&
        !(prev && prev->kind == Tok::kIdent) &&  // `int g;` re-declares locally
        flagged_globals.insert(t.text).second) {
      add(out, fc.path, t.line, "C1",
          "file-scope mutable state '" + t.text + "' (declared at " + fc.path + ":" +
              std::to_string(fc.globals.at(t.text)) + ") accessed in " + where +
              "; cross-party shared state breaks deterministic sharding");
      continue;
    }

    // Unordered-container iteration: hash order leaks into emission order.
    if (t.text == "for" && next && next->text == "(") {
      int depth = 0;
      std::size_t colon = kNpos;
      std::size_t close = kNpos;
      for (std::size_t j = i + 1; j < fb.close_tok && j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") {
          if (--depth == 0) { close = j; break; }
        } else if (depth == 1 && toks[j].text == ":" && colon == kNpos) {
          colon = j;
        }
      }
      if (colon != kNpos && close != kNpos) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == Tok::kIdent && fc.unordered_vars.count(toks[j].text)) {
            add(out, fc.path, toks[j].line, "C1",
                "range-for over unordered container '" + toks[j].text + "' in " + where +
                    "; hash iteration order is unspecified and leaks into message "
                    "emission order");
            break;
          }
        }
      }
      continue;
    }
    if (!member_access && fc.unordered_vars.count(t.text) && next &&
        (next->text == "." || next->text == "->") && i + 3 < toks.size() &&
        toks[i + 2].kind == Tok::kIdent && is_iter_member(toks[i + 2].text) &&
        toks[i + 3].text == "(") {
      add(out, fc.path, t.line, "C1",
          "iteration over unordered container '" + t.text + "' (." + toks[i + 2].text +
              "()) in " + where +
              "; hash iteration order is unspecified and leaks into message emission "
              "order");
      continue;
    }

    // RNG engine construction outside the seeded chain.
    if (!member_access && is_rng_engine(t.text) && !is_rng_home(fc.path)) {
      add(out, fc.path, t.line, "C1",
          "std RNG engine '" + t.text + "' in " + where +
              "; randomness outside the seeded src/common/rng chain breaks bit-identical "
              "sharded replay");
      continue;
    }
  }

  // Singleton accessors: a `X::instance()` handout is simulator-owned shared
  // state escaping into party code.
  for (const CallSite& cs : def.calls) {
    if (cs.name == "instance" && !cs.qual_hint.empty()) {
      add(out, fc.path, cs.line, "C1",
          "singleton accessor '" + cs.qual_hint + "::instance()' called in " + where +
              "; simulator-owned singletons are cross-shard shared state");
    }
  }
}

// ---------------------------------------------------------------------------
// T2 flow helpers.
// ---------------------------------------------------------------------------

/// Token index of the first validation call in a body, or kNpos.
std::size_t first_validation_tok(const Lexed& lx, const FuncBody& fb) {
  for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < lx.toks.size(); ++i) {
    if (lx.toks[i].kind == Tok::kIdent && is_validation_ident(lx.toks[i].text)) return i;
  }
  return kNpos;
}

/// Zero-based argument positions at call site `cs` whose expression
/// mentions identifier `name`.
std::vector<std::size_t> arg_positions_mentioning(const Lexed& lx, const CallSite& cs,
                                                  const std::string& name) {
  const std::vector<Tok>& toks = lx.toks;
  std::vector<std::size_t> out;
  std::size_t lp = cs.tok + 1;
  while (lp < toks.size() && toks[lp].text != "(") ++lp;  // make_unique<T>(...)
  if (lp >= toks.size()) return out;
  int depth = 0;
  std::size_t arg = 0;
  bool mentioned = false;
  for (std::size_t j = lp; j < toks.size(); ++j) {
    const std::string& x = toks[j].text;
    if (x == "(" || x == "[" || x == "{") {
      ++depth;
      continue;
    }
    if (x == ")" || x == "]" || x == "}") {
      if (--depth == 0) break;
      continue;
    }
    if (depth == 1 && x == ",") {
      if (mentioned) out.push_back(arg);
      mentioned = false;
      ++arg;
      continue;
    }
    if (toks[j].kind == Tok::kIdent && x == name) mentioned = true;
  }
  if (mentioned) out.push_back(arg);
  return out;
}

/// First pre-validation byte read of parameter `pname` in `def`'s body:
/// sets *line and *how. Mirrors T1's read forms.
bool first_byte_read(const CallGraph& cg, const FuncDef& def, const std::string& pname,
                     std::size_t* line, std::string* how) {
  const Lexed& lx = cg.files[def.file].lx;
  const std::vector<Tok>& toks = lx.toks;
  const std::size_t valid = first_validation_tok(lx, def.body);
  for (std::size_t i = def.body.open_tok; i <= def.body.close_tok && i < toks.size(); ++i) {
    if (valid != kNpos && i >= valid) break;
    const Tok& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text == pname) {
      const Tok* n1 = (i + 1 < toks.size()) ? &toks[i + 1] : nullptr;
      const Tok* n2 = (i + 2 < toks.size()) ? &toks[i + 2] : nullptr;
      if (n1 && n1->text == "[") {
        *line = t.line;
        *how = "indexing";
        return true;
      }
      if (n1 && (n1->text == "." || n1->text == "->") && n2 && n2->kind == Tok::kIdent &&
          is_byte_read_member(n2->text)) {
        *line = t.line;
        *how = "." + n2->text + "()";
        return true;
      }
      continue;
    }
    if ((t.text == "memcpy" || t.text == "memmove" || t.text == "memcmp") &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      int pdepth = 0;
      for (std::size_t j = i + 1; j <= def.body.close_tok && j < toks.size(); ++j) {
        if (toks[j].text == "(") ++pdepth;
        if (toks[j].text == ")" && --pdepth == 0) break;
        if (toks[j].kind == Tok::kIdent && toks[j].text == pname) {
          *line = t.line;
          *how = t.text + " over the buffer";
          return true;
        }
      }
    }
  }
  return false;
}

struct T2Hit {
  std::size_t def = kNpos;
  std::size_t line = 0;
  std::string how;
  std::vector<std::string> flow;  // qualified names, source first
};

/// DFS: does `def` read the bytes of its parameter `pname` before its own
/// validation point, directly or by handing it to another helper?
bool t2_trace(const CallGraph& cg, std::size_t di, const std::string& pname, int depth,
              std::set<std::pair<std::size_t, std::string>>& visiting, T2Hit* hit) {
  if (depth > 8 || pname.empty()) return false;
  if (!visiting.insert({di, pname}).second) return false;  // recursion cycle
  const FuncDef& def = cg.defs[di];
  const FileCtx& fc = cg.files[def.file];
  if (!in_taint_scope(fc.path)) return false;
  // `payload` parameters are T1's jurisdiction already — no duplicate report.
  if (pname == "payload") return false;
  std::size_t line = 0;
  std::string how;
  if (first_byte_read(cg, def, pname, &line, &how)) {
    hit->def = di;
    hit->line = line;
    hit->how = how;
    hit->flow.push_back(def.body.qual);
    return true;
  }
  const std::size_t valid = first_validation_tok(fc.lx, def.body);
  for (const CallSite& cs : def.calls) {
    if (valid != kNpos && cs.tok >= valid) continue;
    if (is_validation_ident(cs.name)) continue;
    const std::vector<std::size_t> positions = arg_positions_mentioning(fc.lx, cs, pname);
    if (positions.empty()) continue;
    for (std::size_t cal : cg.resolve(def, cs)) {
      const FuncDef& callee = cg.defs[cal];
      for (std::size_t pos : positions) {
        if (pos >= callee.params.size()) continue;
        if (t2_trace(cg, cal, callee.params[pos], depth + 1, visiting, hit)) {
          hit->flow.push_back(def.body.qual);
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// The combined pass.
// ---------------------------------------------------------------------------

std::vector<Finding> check_callgraph(const CallGraph& cg, const ShardManifest* manifest,
                                     const std::string& manifest_path,
                                     CallGraphStats* stats) {
  std::vector<Finding> out;

  // Roots from inline markers. Hotpath resolution errors are P1's job
  // (check_p1 reports them per file); shard-root errors are reported here.
  std::set<std::size_t> shard_roots, hotpath_marked;
  std::vector<std::size_t> file_def_base(cg.files.size(), 0);
  {
    std::size_t di = 0;
    for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
      file_def_base[fi] = di;
      while (di < cg.defs.size() && cg.defs[di].file == fi) ++di;
    }
  }
  for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
    const FileCtx& fc = cg.files[fi];
    std::vector<FuncBody> funcs;
    for (std::size_t d = file_def_base[fi]; d < cg.defs.size() && cg.defs[d].file == fi; ++d) {
      funcs.push_back(cg.defs[d].body);
    }
    for (const Marker& m : parse_markers(fc.lx)) {
      std::string err;
      const std::size_t local = resolve_marker(m, funcs, &err);
      if (m.kind == "shard-root") {
        if (local == kNpos) {
          add(out, fc.path, m.line, "C1", "srds-lint: shard-root marker " + err);
        } else {
          shard_roots.insert(file_def_base[fi] + local);
        }
      } else if (m.kind == "hotpath" && local != kNpos) {
        hotpath_marked.insert(file_def_base[fi] + local);
      }
    }
  }

  // Roots + allows from the manifest.
  std::set<std::size_t> allowed;
  if (manifest) {
    for (const std::string& name : manifest->roots) {
      bool any = false;
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (marker_name_matches(name, cg.defs[d].body)) {
          shard_roots.insert(d);
          any = true;
        }
      }
      if (!any) {
        add(out, manifest_path, 0, "C1",
            "shard-root manifest entry '" + name +
                "' matches no function definition in the scanned set; was the target "
                "deleted or renamed?");
      }
    }
    for (const auto& [name, just] : manifest->allows) {
      (void)just;
      bool any = false;
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (marker_name_matches(name, cg.defs[d].body)) {
          allowed.insert(d);
          any = true;
        }
      }
      if (!any) {
        add(out, manifest_path, 0, "C1",
            "shard-root manifest [allow] entry '" + name +
                "' matches no function definition in the scanned set; remove the stale "
                "entry");
      }
    }
  }

  // C1: everything reachable from a shard root (roots included).
  const std::vector<std::size_t> c1_roots(shard_roots.begin(), shard_roots.end());
  const Reach c1 = reach_from(cg, c1_roots, allowed);
  std::size_t c1_reachable = 0;
  for (std::size_t d = 0; d < cg.defs.size(); ++d) {
    if (!c1.vis[d]) continue;
    ++c1_reachable;
    c1_scan_def(cg, c1, d, out);
  }

  // P2: the P1 discipline, propagated from every hotpath-marked function to
  // everything it can reach. The marked bodies themselves are P1's.
  const std::vector<std::size_t> p2_roots(hotpath_marked.begin(), hotpath_marked.end());
  const Reach p2 = reach_from(cg, p2_roots, allowed);
  std::size_t p2_reachable = 0;
  std::set<std::pair<std::string, std::size_t>> p2_seen;
  for (std::size_t d = 0; d < cg.defs.size(); ++d) {
    if (!p2.vis[d]) continue;
    ++p2_reachable;
    if (hotpath_marked.count(d)) continue;
    const FuncDef& def = cg.defs[d];
    const FileCtx& fc = cg.files[def.file];
    for (const HotpathViolation& v : hotpath_violations(fc.lx, def.body)) {
      if (!p2_seen.insert({fc.path, v.line}).second) continue;
      add(out, fc.path, v.line, "P2",
          v.what + " in function '" + def.body.qual + "' reachable from hotpath '" +
              cg.defs[p2.root[d]].body.qual + "' (call path: " + call_path(cg, p2, d) +
              "); the per-message path must not allocate, unwind, or type-erase");
    }
  }

  // T2: payload bytes handed to helpers before validation.
  std::set<std::pair<std::string, std::size_t>> t2_seen;
  for (std::size_t d = 0; d < cg.defs.size(); ++d) {
    const FuncDef& def = cg.defs[d];
    const FileCtx& fc = cg.files[def.file];
    if (!in_taint_scope(fc.path)) continue;
    if (allowed.count(d)) continue;
    const std::size_t valid = first_validation_tok(fc.lx, def.body);
    for (const CallSite& cs : def.calls) {
      if (valid != kNpos && cs.tok >= valid) continue;
      if (is_validation_ident(cs.name)) continue;
      const std::vector<std::size_t> positions =
          arg_positions_mentioning(fc.lx, cs, "payload");
      if (positions.empty()) continue;
      for (std::size_t cal : cg.resolve(def, cs)) {
        const FuncDef& callee = cg.defs[cal];
        if (allowed.count(cal)) continue;
        for (std::size_t pos : positions) {
          if (pos >= callee.params.size()) continue;
          T2Hit hit;
          std::set<std::pair<std::size_t, std::string>> visiting;
          visiting.insert({d, "payload"});
          if (!t2_trace(cg, cal, callee.params[pos], 1, visiting, &hit)) continue;
          const FileCtx& hit_fc = cg.files[cg.defs[hit.def].file];
          if (!t2_seen.insert({hit_fc.path, hit.line}).second) continue;
          hit.flow.push_back(def.body.qual);
          std::reverse(hit.flow.begin(), hit.flow.end());
          std::string flow;
          for (std::size_t i = 0; i < hit.flow.size(); ++i) {
            if (i) flow += " -> ";
            flow += hit.flow[i];
          }
          add(out, hit_fc.path, hit.line, "T2",
              "function '" + cg.defs[hit.def].body.qual +
                  "' reads adversarial payload bytes (" + hit.how +
                  ") before validation; the payload was handed off unvalidated along " +
                  flow +
                  " — validate at the boundary or move the read behind a "
                  "deserialize/validate call");
        }
      }
    }
  }

  if (stats) {
    stats->functions = cg.defs.size();
    std::size_t edges = 0;
    for (const FuncDef& def : cg.defs) {
      for (const CallSite& cs : def.calls) edges += cg.resolve(def, cs).size();
    }
    stats->call_edges = edges;
    stats->external_calls = cg.external_calls;
    stats->shard_roots = shard_roots.size();
    stats->hotpath_funcs = hotpath_marked.size();
    stats->shard_reachable = c1_reachable;
    stats->hotpath_reachable = p2_reachable;
    stats->allowed_skips = c1.allowed_skips + p2.allowed_skips;
  }
  return out;
}

std::string call_graph_dot(const CallGraph& cg, const ShardManifest* manifest) {
  // Same root/allow resolution as check_callgraph, minus the findings.
  std::set<std::size_t> roots, allowed;
  shard_roots_and_allows(cg, manifest, roots, allowed);
  const Reach r = reach_from(cg, {roots.begin(), roots.end()}, allowed);

  std::string dot = "digraph srds_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  auto node_id = [](std::size_t d) { return "f" + std::to_string(d); };
  std::set<std::size_t> shown;
  for (std::size_t d = 0; d < cg.defs.size(); ++d) {
    if (r.vis[d]) shown.insert(d);
  }
  // Allowed nodes adjacent to the reachable set, dashed: the escape hatch
  // is visible in the artifact.
  for (std::size_t d : std::set<std::size_t>(shown)) {
    for (const CallSite& cs : cg.defs[d].calls) {
      for (std::size_t cal : cg.resolve(cg.defs[d], cs)) {
        if (allowed.count(cal)) shown.insert(cal);
      }
    }
  }
  for (std::size_t d : shown) {
    dot += "  " + node_id(d) + " [label=\"" + cg.defs[d].body.qual + "\"";
    if (roots.count(d)) dot += ", peripheries=2";
    if (allowed.count(d)) dot += ", style=dashed";
    dot += "];\n";
  }
  for (std::size_t d : shown) {
    if (allowed.count(d)) continue;  // traversal stopped here
    std::set<std::size_t> targets;
    for (const CallSite& cs : cg.defs[d].calls) {
      for (std::size_t cal : cg.resolve(cg.defs[d], cs)) {
        if (shown.count(cal)) targets.insert(cal);
      }
    }
    for (std::size_t cal : targets) {
      dot += "  " + node_id(d) + " -> " + node_id(cal) + ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace srds::lint

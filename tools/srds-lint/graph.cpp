#include "graph.hpp"

#include <algorithm>
#include <deque>
#include <tuple>

#include "lex.hpp"

namespace srds::lint {

namespace {

/// One logical manifest line with its 1-based line number.
struct ManifestLine {
  std::size_t line;
  std::string text;  // trimmed, comment stripped
};

std::string strip_comment(const std::string& s) {
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

/// Parse `["a", "b"]` (possibly empty). Returns false on syntax errors.
bool parse_string_array(const std::string& s, std::vector<std::string>& out) {
  std::string t = trim(s);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') return false;
  t = trim(t.substr(1, t.size() - 2));
  if (t.empty()) return true;
  std::size_t i = 0;
  while (i < t.size()) {
    while (i < t.size() && (t[i] == ' ' || t[i] == '\t')) ++i;
    if (i >= t.size() || t[i] != '"') return false;
    std::size_t close = t.find('"', i + 1);
    if (close == std::string::npos) return false;
    out.push_back(t.substr(i + 1, close - (i + 1)));
    i = close + 1;
    while (i < t.size() && (t[i] == ' ' || t[i] == '\t')) ++i;
    if (i < t.size()) {
      if (t[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

const std::vector<std::string>* LayerManifest::deps_of(const std::string& m) const {
  for (const auto& [name, deps] : layers) {
    if (name == m) return &deps;
  }
  return nullptr;
}

bool LayerManifest::is_open(const std::string& m) const { return contains(open, m); }

bool LayerManifest::is_unrestricted(const std::string& m) const {
  return contains(unrestricted, m);
}

bool parse_layers(const std::string& text, LayerManifest& out, std::string& error) {
  out = LayerManifest{};
  enum class Section { kNone, kLayers, kOpen, kUnrestricted };
  Section section = Section::kNone;

  std::size_t lineno = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& why) {
    error = "line " + std::to_string(lineno) + ": " + why;
    return false;
  };

  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    std::string raw = text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = (nl == std::string::npos) ? text.size() + 1 : nl + 1;
    ++lineno;

    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line == "[layers]") {
        section = Section::kLayers;
      } else if (line == "[open]") {
        section = Section::kOpen;
      } else if (line == "[unrestricted]") {
        section = Section::kUnrestricted;
      } else {
        return fail("unknown section " + line);
      }
      continue;
    }

    std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected `name = [...]`");
    const std::string key = trim(line.substr(0, eq));
    std::vector<std::string> values;
    if (!parse_string_array(line.substr(eq + 1), values)) {
      return fail("bad string array for '" + key + "'");
    }

    switch (section) {
      case Section::kNone:
        return fail("entry before any [section]");
      case Section::kLayers:
        if (out.declares(key)) return fail("duplicate module '" + key + "'");
        out.layers.emplace_back(key, std::move(values));
        break;
      case Section::kOpen:
        if (key != "modules") return fail("[open] takes only `modules = [...]`");
        out.open = std::move(values);
        break;
      case Section::kUnrestricted:
        if (key != "modules") return fail("[unrestricted] takes only `modules = [...]`");
        out.unrestricted = std::move(values);
        break;
    }
  }

  // Every declared dependency must itself be a declared module (open
  // modules are declared too — their own deps are still constrained).
  for (const auto& [name, deps] : out.layers) {
    for (const std::string& d : deps) {
      if (!out.declares(d)) {
        lineno = 0;
        return fail("module '" + name + "' depends on undeclared module '" + d + "'");
      }
      if (d == name) {
        lineno = 0;
        return fail("module '" + name + "' depends on itself");
      }
    }
  }

  // The manifest is the DAG: reject declared cycles outright. DFS coloring;
  // on a back edge, report the cycle path.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::string cycle;
  auto dfs = [&](auto&& self, const std::string& m) -> bool {
    color[m] = 1;
    path.push_back(m);
    for (const std::string& d : *out.deps_of(m)) {
      if (color[d] == 1) {
        cycle = d;
        for (auto it = std::find(path.begin(), path.end(), d); it != path.end(); ++it) {
          if (*it != d) cycle += " -> " + *it;
        }
        cycle += " -> " + d;
        return false;
      }
      if (color[d] == 0 && !self(self, d)) return false;
    }
    path.pop_back();
    color[m] = 2;
    return true;
  };
  for (const auto& [name, deps] : out.layers) {
    (void)deps;
    if (color[name] == 0 && !dfs(dfs, name)) {
      lineno = 0;
      return fail("declared dependencies form a cycle: " + cycle);
    }
  }
  return true;
}

std::string module_of(const std::string& raw) {
  const std::string path = normalize_path(raw);
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    std::size_t slash = path.find('/', i);
    if (slash == std::string::npos) {
      parts.push_back(path.substr(i));
      break;
    }
    parts.push_back(path.substr(i, slash - i));
    i = slash + 1;
  }
  if (parts.empty()) return "";
  if (parts[0] == "src") {
    // "src/ba/x.cpp" -> "ba"; a file directly in src/ -> "src".
    return parts.size() >= 3 ? parts[1] : "src";
  }
  return parts[0];
}

DepGraph build_dep_graph(const std::vector<std::pair<std::string, std::string>>& files) {
  DepGraph g;
  for (const auto& [raw_path, content] : files) {
    const std::string path = normalize_path(raw_path);
    g.files.push_back(path);
    const std::string from = module_of(path);
    const Lexed lx = lex(content);
    for (const PpDirective& d : lx.directives) {
      const std::string target = quoted_include_target(d);
      if (target.empty()) continue;
      std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = target.substr(0, slash);
      if (to == from) continue;
      g.edges.push_back(IncludeEdge{path, d.line, target, from, to});
      g.module_edges[from].insert(to);
    }
  }
  std::sort(g.files.begin(), g.files.end());
  std::sort(g.edges.begin(), g.edges.end(), [](const IncludeEdge& a, const IncludeEdge& b) {
    return std::tie(a.from_file, a.line, a.target) < std::tie(b.from_file, b.line, b.target);
  });
  return g;
}

std::string dep_graph_dot(const DepGraph& g) {
  std::string out = "digraph srds_modules {\n  rankdir=BT;\n";
  for (const auto& [from, tos] : g.module_edges) {
    for (const std::string& to : tos) {
      out += "  \"" + from + "\" -> \"" + to + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

namespace {

/// Shortest module path from -> ... -> to over the actual edges (BFS);
/// empty when unreachable.
std::vector<std::string> shortest_path(const DepGraph& g, const std::string& from,
                                       const std::string& to) {
  std::map<std::string, std::string> parent;
  std::deque<std::string> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    std::string m = queue.front();
    queue.pop_front();
    if (m == to) {
      std::vector<std::string> path{to};
      while (path.back() != from) path.push_back(parent[path.back()]);
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = g.module_edges.find(m);
    if (it == g.module_edges.end()) continue;
    for (const std::string& next : it->second) {
      if (!parent.count(next)) {
        parent[next] = m;
        queue.push_back(next);
      }
    }
  }
  return {};
}

}  // namespace

std::vector<Finding> check_layers(const DepGraph& g, const LayerManifest& m) {
  std::vector<Finding> out;
  for (const IncludeEdge& e : g.edges) {
    if (m.is_unrestricted(e.from_module)) continue;
    if (m.is_open(e.to_module)) continue;
    // Include targets that name no declared/open/unrestricted module are
    // third-party paths, not layer edges.
    if (!m.declares(e.to_module) && !m.is_unrestricted(e.to_module)) continue;

    Finding f;
    f.file = e.from_file;
    f.line = e.line;
    f.rule = "L1";
    if (!m.declares(e.from_module)) {
      f.message = "module '" + e.from_module + "' (for " + e.from_file +
                  ") is not declared in layers.toml; add it to [layers] with its "
                  "allowed dependencies (see docs/static_analysis.md)";
      out.push_back(std::move(f));
      continue;
    }
    const std::vector<std::string>& deps = *m.deps_of(e.from_module);
    if (contains(deps, e.to_module)) continue;

    f.message = "illegal layering edge " + e.from_module + " -> " + e.to_module +
                " (#include \"" + e.target + "\"): not in '" + e.from_module +
                "' deps in layers.toml";
    // If this edge closes a module cycle, the back path to_module ->* from_module
    // exists; append the shortest full cycle — that is the refactor target.
    const std::vector<std::string> back = shortest_path(g, e.to_module, e.from_module);
    if (!back.empty()) {
      f.message += "; closes module cycle: " + e.from_module;
      for (const std::string& step : back) f.message += " -> " + step;
    }
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace srds::lint

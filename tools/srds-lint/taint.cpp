#include "taint.hpp"

#include <set>

namespace srds::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kControl = {"if",     "for",   "while", "switch",
                                                "catch",  "return", "sizeof", "alignof",
                                                "decltype"};
  return kControl.count(s) != 0;
}

/// Tokens that may sit between a declarator's ')' and the body '{':
/// cv-qualifiers, noexcept, override/final (all idents), trailing return
/// types and member-initializer lists.
bool is_trailer_token(const Tok& t) {
  if (t.kind == Tok::kIdent || t.kind == Tok::kNum) return true;
  return t.text == "::" || t.text == "->" || t.text == "<" || t.text == ">" ||
         t.text == "," || t.text == "*" || t.text == "&" || t.text == ":";
}

/// Tokens allowed between a class-head keyword and its '{' (name, bases,
/// template args, final).
bool is_class_head_token(const Tok& t) {
  if (t.kind == Tok::kIdent || t.kind == Tok::kNum) return true;
  return t.text == "::" || t.text == "<" || t.text == ">" || t.text == ":" ||
         t.text == "," || t.text == "&" || t.text == "*" || t.text == "[" ||
         t.text == "]";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::vector<FuncBody> function_bodies(const Lexed& lx) {
  const std::vector<Tok>& toks = lx.toks;
  // Matching ')' -> '(' indices.
  std::vector<std::size_t> open_of(toks.size(), kNpos);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "(") {
        stack.push_back(i);
      } else if (toks[i].text == ")" && !stack.empty()) {
        open_of[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  std::vector<FuncBody> out;
  int depth = 0;
  bool in_func = false;
  int func_open_depth = 0;
  // Enclosing class/struct bodies, for qualifying in-class definitions.
  struct ClassScope {
    std::string name;
    int depth;  // brace depth inside the class body
  };
  std::vector<ClassScope> classes;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.text == "{") {
      ++depth;
      if (in_func) continue;
      // Walk back over declarator trailer tokens to the ')' (if any). A
      // constructor's member-initializer list puts `: a_(1), b_(2)` between
      // the parameter list and the body; when the ')' we find belongs to an
      // initializer (its name chain is preceded by ':' or ','), hop left to
      // the previous group until the real declarator surfaces.
      std::size_t j = i;
      std::size_t close = kNpos, open = kNpos;
      bool is_func = false;
      for (int hop = 0; hop < 32; ++hop) {
        close = kNpos;
        while (j > 0) {
          const Tok& p = toks[j - 1];
          if (p.text == ")") {
            close = j - 1;
            break;
          }
          if (!is_trailer_token(p)) break;
          --j;
        }
        if (close == kNpos) break;
        open = open_of[close];
        if (open == kNpos || open == 0) break;
        const Tok& before = toks[open - 1];
        if (before.text == "]") break;  // lambda at namespace scope
        if (before.kind != Tok::kIdent || is_control_keyword(before.text)) break;
        // Start of the qualified name chain (`A::B::name`).
        std::size_t k = open - 1;
        while (k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == Tok::kIdent) k -= 2;
        if (k > 0 && (toks[k - 1].text == ":" || toks[k - 1].text == ",")) {
          j = open;  // initializer-list member; keep hopping left
          continue;
        }
        is_func = true;
        // Build name + qualified chain.
        FuncBody fb;
        fb.name = before.text;
        for (std::size_t q = k; q < open; ++q) fb.qual += toks[q].text;
        if (fb.qual.find("::") == std::string::npos && !classes.empty()) {
          fb.qual = classes.back().name + "::" + fb.name;
        }
        fb.open_line = t.line;
        fb.open_tok = i;
        fb.close_tok = toks.size() ? toks.size() - 1 : 0;
        fb.close_line = toks.empty() ? t.line : toks.back().line;
        fb.lparen_tok = open;
        fb.rparen_tok = close;
        out.push_back(std::move(fb));
        in_func = true;
        func_open_depth = depth;
        break;
      }
      if (is_func) continue;
      // Not a function body: is it a class/struct body? Walk back over the
      // class head (name, bases, template args) looking for the keyword.
      std::size_t back = i;
      std::string class_name;
      for (int steps = 0; back > 0 && steps < 64; ++steps) {
        const Tok& p = toks[back - 1];
        if (p.kind == Tok::kIdent && (p.text == "class" || p.text == "struct" ||
                                      p.text == "union")) {
          if (back < toks.size() && toks[back].kind == Tok::kIdent) {
            class_name = toks[back].text;
          }
          break;
        }
        if (!is_class_head_token(p)) break;
        --back;
      }
      if (!class_name.empty()) classes.push_back(ClassScope{class_name, depth});
      continue;
    }
    if (t.text == "}") {
      if (in_func && depth == func_open_depth) {
        out.back().close_tok = i;
        out.back().close_line = t.line;
        in_func = false;
      }
      if (!in_func && !classes.empty() && depth == classes.back().depth) classes.pop_back();
      if (depth > 0) --depth;
    }
  }
  return out;
}

std::vector<Marker> parse_markers(const Lexed& lx) {
  std::vector<Marker> out;
  for (const Comment& c : lx.comments) {
    std::size_t pos = c.text.find("srds-lint:");
    if (pos == std::string::npos) continue;
    std::size_t i = pos + 10;
    while (i < c.text.size() && (c.text[i] == ' ' || c.text[i] == '\t')) ++i;
    std::string kind;
    for (const char* k : {"shard-root", "hotpath"}) {
      const std::string kw = k;
      if (c.text.compare(i, kw.size(), kw) == 0) {
        // Word boundary: "hotpathology" is not a marker.
        const std::size_t after = i + kw.size();
        if (after < c.text.size() && (std::isalnum(static_cast<unsigned char>(c.text[after])) ||
                                      c.text[after] == '_' || c.text[after] == '-')) {
          continue;
        }
        kind = kw;
        i = after;
        break;
      }
    }
    if (kind.empty()) continue;
    Marker m;
    m.kind = kind;
    m.line = c.line;
    while (i < c.text.size() && (c.text[i] == ' ' || c.text[i] == '\t')) ++i;
    if (i < c.text.size() && c.text[i] == '(') {
      std::size_t closep = c.text.find(')', i);
      if (closep != std::string::npos) m.name = trim(c.text.substr(i + 1, closep - i - 1));
    }
    out.push_back(std::move(m));
  }
  return out;
}

bool marker_name_matches(const std::string& name, const FuncBody& fb) {
  if (name.empty()) return true;
  if (name == fb.name || name == fb.qual) return true;
  if (ends_with(fb.qual, "::" + name)) return true;
  // A qualified marker name may carry *more* context than the def's
  // extracted qual (namespace prefix, say) — but only when the def's own
  // qualifier doesn't contradict it. `Foo::run` must never match a def
  // known to be `Bar::run`, else every same-named method becomes a match.
  if (fb.qual == fb.name && ends_with(name, "::" + fb.name)) return true;
  if (fb.qual != fb.name && ends_with(name, "::" + fb.qual)) return true;
  return false;
}

std::size_t resolve_marker(const Marker& m, const std::vector<FuncBody>& funcs,
                           std::string* error) {
  // A marker inside a body marks that body; otherwise the next body below.
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const FuncBody& fb = funcs[fi];
    if (fb.open_line <= m.line && m.line <= fb.close_line) {
      if (!marker_name_matches(m.name, fb)) {
        *error = "names '" + m.name + "' but sits inside the body of '" + fb.qual +
                 "'; was the target deleted or renamed?";
        return kNpos;
      }
      return fi;
    }
    if (fb.open_line >= m.line) {
      if (!m.name.empty()) {
        if (marker_name_matches(m.name, fb)) return fi;
        *error = "names '" + m.name + "' but the next function body (line " +
                 std::to_string(fb.open_line) + ") belongs to '" + fb.qual +
                 "'; was the target deleted or renamed?";
        return kNpos;
      }
      if (fb.open_line - m.line <= kMarkerAttachWindow) return fi;
      *error = "no function body opens within " + std::to_string(kMarkerAttachWindow) +
               " lines (next is '" + fb.qual + "' at line " + std::to_string(fb.open_line) +
               "); was the target deleted or moved?";
      return kNpos;
    }
  }
  *error = "matches no function body";
  return kNpos;
}

namespace {

bool is_validation_ident(const std::string& s) {
  if (s == "untag_body" || s == "Reader") return true;
  return s.find("deserialize") != std::string::npos || s.find("validate") != std::string::npos;
}

bool is_byte_read_member(const std::string& s) {
  static const std::set<std::string> kReads = {"data",  "begin", "end",  "front",
                                               "back",  "rbegin", "rend", "cbegin",
                                               "cend"};
  return kReads.count(s) != 0;
}

bool in_taint_scope(const std::string& path) {
  return path_under(path, "src/ba") || path_under(path, "src/consensus") ||
         path_under(path, "src/srds") || path_under(path, "src/mpc");
}

}  // namespace

void check_t1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  if (!in_taint_scope(path)) return;
  const std::vector<Tok>& toks = lx.toks;
  const std::vector<FuncBody> funcs = function_bodies(lx);

  for (const FuncBody& fb : funcs) {
    // First validation point in the body, as a token index.
    std::size_t first_valid = kNpos;
    for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
      if (toks[i].kind == Tok::kIdent && is_validation_ident(toks[i].text)) {
        first_valid = i;
        break;
      }
    }

    std::set<std::size_t> flagged_lines;
    auto flag = [&](std::size_t tok_idx, const std::string& how) {
      if (first_valid != kNpos && first_valid <= tok_idx) return;
      if (!flagged_lines.insert(toks[tok_idx].line).second) return;
      Finding f;
      f.file = path;
      f.line = toks[tok_idx].line;
      f.rule = "T1";
      f.message = "function '" + fb.name + "' reads Message::payload bytes (" + how +
                  ") without a prior deserialize/validate/untag_body/Reader call in the "
                  "same body; adversary-controlled bytes must pass a bounds-checked "
                  "parse before protocol logic acts on them";
      out.push_back(std::move(f));
    };

    for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "payload") {
        const Tok* n1 = (i + 1 < toks.size()) ? &toks[i + 1] : nullptr;
        const Tok* n2 = (i + 2 < toks.size()) ? &toks[i + 2] : nullptr;
        if (n1 && n1->text == "[") {
          flag(i, "indexing");
        } else if (n1 && (n1->text == "." || n1->text == "->") && n2 &&
                   n2->kind == Tok::kIdent && is_byte_read_member(n2->text)) {
          flag(i, "." + n2->text + "()");
        }
        continue;
      }
      // memcpy/memmove/memcmp with the payload buffer as any argument.
      if ((t.text == "memcpy" || t.text == "memmove" || t.text == "memcmp") &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        int pdepth = 0;
        for (std::size_t j = i + 1; j <= fb.close_tok && j < toks.size(); ++j) {
          if (toks[j].text == "(") ++pdepth;
          if (toks[j].text == ")" && --pdepth == 0) break;
          if (toks[j].kind == Tok::kIdent && toks[j].text == "payload") {
            flag(i, t.text + " over the buffer");
            break;
          }
        }
      }
    }
  }
}

std::vector<HotpathViolation> hotpath_violations(const Lexed& lx, const FuncBody& fb) {
  const std::vector<Tok>& toks = lx.toks;
  std::vector<HotpathViolation> out;
  for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "throw") {
      out.push_back(HotpathViolation{t.line, "'throw'"});
    } else if (t.text == "new") {
      out.push_back(HotpathViolation{t.line, "'new'"});
    } else if (t.text == "std" && i + 2 < toks.size() && toks[i + 1].text == "::" &&
               toks[i + 2].text == "function") {
      out.push_back(HotpathViolation{t.line, "std::function construction"});
    }
  }
  return out;
}

void check_p1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  const std::vector<Marker> markers = parse_markers(lx);
  bool any_hotpath = false;
  for (const Marker& m : markers) any_hotpath |= (m.kind == "hotpath");
  if (!any_hotpath) return;

  const std::vector<FuncBody> funcs = function_bodies(lx);
  std::set<std::size_t> marked;  // indices into funcs

  for (const Marker& m : markers) {
    if (m.kind != "hotpath") continue;  // shard-root is the call-graph pass's job
    std::string err;
    std::size_t target = resolve_marker(m, funcs, &err);
    if (target == kNpos) {
      Finding f;
      f.file = path;
      f.line = m.line;
      f.rule = "P1";
      f.message = "srds-lint: hotpath marker " + err;
      out.push_back(std::move(f));
      continue;
    }
    marked.insert(target);
  }

  for (std::size_t fi : marked) {
    const FuncBody& fb = funcs[fi];
    for (const HotpathViolation& v : hotpath_violations(lx, fb)) {
      Finding f;
      f.file = path;
      f.line = v.line;
      f.rule = "P1";
      f.message = v.what + " in hotpath function '" + fb.name +
                  "': the delivery/aggregation path runs per message; it must not "
                  "allocate, unwind, or type-erase";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace srds::lint

#include "taint.hpp"

#include <set>

namespace srds::lint {

namespace {

bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kControl = {"if",     "for",   "while", "switch",
                                                "catch",  "return", "sizeof", "alignof",
                                                "decltype"};
  return kControl.count(s) != 0;
}

/// Tokens that may sit between a declarator's ')' and the body '{':
/// cv-qualifiers, noexcept, override/final (all idents), trailing return
/// types and member-initializer lists.
bool is_trailer_token(const Tok& t) {
  if (t.kind == Tok::kIdent || t.kind == Tok::kNum) return true;
  return t.text == "::" || t.text == "->" || t.text == "<" || t.text == ">" ||
         t.text == "," || t.text == "*" || t.text == "&" || t.text == ":";
}

}  // namespace

std::vector<FuncBody> function_bodies(const Lexed& lx) {
  const std::vector<Tok>& toks = lx.toks;
  // Matching ')' -> '(' indices.
  std::vector<std::size_t> open_of(toks.size(), static_cast<std::size_t>(-1));
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text == "(") {
        stack.push_back(i);
      } else if (toks[i].text == ")" && !stack.empty()) {
        open_of[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  std::vector<FuncBody> out;
  int depth = 0;
  bool in_func = false;
  int func_open_depth = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.text == "{") {
      ++depth;
      if (in_func) continue;
      // Walk back over declarator trailer tokens to the ')' (if any). A
      // member-initializer list may contain (...) groups of its own; jump
      // over each to its '(' and keep walking.
      std::size_t j = i;
      std::size_t close = static_cast<std::size_t>(-1);
      while (j > 0) {
        const Tok& p = toks[j - 1];
        if (p.text == ")") {
          close = j - 1;
          break;
        }
        if (!is_trailer_token(p)) break;
        --j;
      }
      // Init-list hop: Foo::Foo() : a_(1), b_(2) { — the ')' we found may
      // belong to an initializer; hop groups until the one whose '(' is
      // preceded by the parameter-list context. One declarator heuristic
      // covers both: take the *first* ')' scanning left, then identify the
      // name before its matching '('. For init lists the name is a member
      // ("a_"), which still marks a constructor body — good enough, the
      // passes care about the body extent, not the pretty name.
      if (close == static_cast<std::size_t>(-1)) continue;
      const std::size_t open = open_of[close];
      if (open == static_cast<std::size_t>(-1) || open == 0) continue;
      const Tok& before = toks[open - 1];
      if (before.text == "]") continue;  // lambda at namespace scope
      if (before.kind != Tok::kIdent || is_control_keyword(before.text)) continue;
      FuncBody fb;
      fb.name = before.text;
      fb.open_line = t.line;
      fb.open_tok = i;
      fb.close_tok = toks.size() ? toks.size() - 1 : 0;
      fb.close_line = toks.empty() ? t.line : toks.back().line;
      out.push_back(fb);
      in_func = true;
      func_open_depth = depth;
      continue;
    }
    if (t.text == "}") {
      if (in_func && depth == func_open_depth) {
        out.back().close_tok = i;
        out.back().close_line = t.line;
        in_func = false;
      }
      if (depth > 0) --depth;
    }
  }
  return out;
}

namespace {

bool is_validation_ident(const std::string& s) {
  if (s == "untag_body" || s == "Reader") return true;
  return s.find("deserialize") != std::string::npos || s.find("validate") != std::string::npos;
}

bool is_byte_read_member(const std::string& s) {
  static const std::set<std::string> kReads = {"data",  "begin", "end",  "front",
                                               "back",  "rbegin", "rend", "cbegin",
                                               "cend"};
  return kReads.count(s) != 0;
}

bool in_taint_scope(const std::string& path) {
  return path_under(path, "src/ba") || path_under(path, "src/consensus") ||
         path_under(path, "src/srds") || path_under(path, "src/mpc");
}

}  // namespace

void check_t1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  if (!in_taint_scope(path)) return;
  const std::vector<Tok>& toks = lx.toks;
  const std::vector<FuncBody> funcs = function_bodies(lx);

  for (const FuncBody& fb : funcs) {
    // First validation point in the body, as a token index.
    std::size_t first_valid = static_cast<std::size_t>(-1);
    for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
      if (toks[i].kind == Tok::kIdent && is_validation_ident(toks[i].text)) {
        first_valid = i;
        break;
      }
    }

    std::set<std::size_t> flagged_lines;
    auto flag = [&](std::size_t tok_idx, const std::string& how) {
      if (first_valid != static_cast<std::size_t>(-1) && first_valid <= tok_idx) return;
      if (!flagged_lines.insert(toks[tok_idx].line).second) return;
      Finding f;
      f.file = path;
      f.line = toks[tok_idx].line;
      f.rule = "T1";
      f.message = "function '" + fb.name + "' reads Message::payload bytes (" + how +
                  ") without a prior deserialize/validate/untag_body/Reader call in the "
                  "same body; adversary-controlled bytes must pass a bounds-checked "
                  "parse before protocol logic acts on them";
      out.push_back(std::move(f));
    };

    for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "payload") {
        const Tok* n1 = (i + 1 < toks.size()) ? &toks[i + 1] : nullptr;
        const Tok* n2 = (i + 2 < toks.size()) ? &toks[i + 2] : nullptr;
        if (n1 && n1->text == "[") {
          flag(i, "indexing");
        } else if (n1 && (n1->text == "." || n1->text == "->") && n2 &&
                   n2->kind == Tok::kIdent && is_byte_read_member(n2->text)) {
          flag(i, "." + n2->text + "()");
        }
        continue;
      }
      // memcpy/memmove/memcmp with the payload buffer as any argument.
      if ((t.text == "memcpy" || t.text == "memmove" || t.text == "memcmp") &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        int pdepth = 0;
        for (std::size_t j = i + 1; j <= fb.close_tok && j < toks.size(); ++j) {
          if (toks[j].text == "(") ++pdepth;
          if (toks[j].text == ")" && --pdepth == 0) break;
          if (toks[j].kind == Tok::kIdent && toks[j].text == "payload") {
            flag(i, t.text + " over the buffer");
            break;
          }
        }
      }
    }
  }
}

void check_p1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  // Collect hotpath markers; each marks the function whose body contains
  // it, or else the next function opening at/after the marker line.
  std::vector<std::size_t> markers;
  for (const Comment& c : lx.comments) {
    if (c.text.find("srds-lint: hotpath") != std::string::npos) markers.push_back(c.line);
  }
  if (markers.empty()) return;

  const std::vector<FuncBody> funcs = function_bodies(lx);
  const std::vector<Tok>& toks = lx.toks;
  std::set<std::size_t> marked;  // indices into funcs

  for (std::size_t mline : markers) {
    std::size_t target = static_cast<std::size_t>(-1);
    for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
      if (funcs[fi].open_line <= mline && mline <= funcs[fi].close_line) {
        target = fi;
        break;
      }
      if (funcs[fi].open_line >= mline) {
        target = fi;
        break;
      }
    }
    if (target == static_cast<std::size_t>(-1)) {
      Finding f;
      f.file = path;
      f.line = mline;
      f.rule = "P1";
      f.message = "srds-lint: hotpath marker matches no function body";
      out.push_back(std::move(f));
      continue;
    }
    marked.insert(target);
  }

  for (std::size_t fi : marked) {
    const FuncBody& fb = funcs[fi];
    for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      std::string what;
      if (t.text == "throw") {
        what = "'throw'";
      } else if (t.text == "new") {
        what = "'new'";
      } else if (t.text == "std" && i + 2 < toks.size() && toks[i + 1].text == "::" &&
                 toks[i + 2].text == "function") {
        what = "std::function construction";
      } else {
        continue;
      }
      Finding f;
      f.file = path;
      f.line = t.line;
      f.rule = "P1";
      f.message = what + " in hotpath function '" + fb.name +
                  "': the delivery/aggregation path runs per message; it must not "
                  "allocate, unwind, or type-erase";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace srds::lint

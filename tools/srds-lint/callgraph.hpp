// Symbol-level call graph + the interprocedural passes built on it.
//
// ROADMAP item 1 shards the simulator across threads; the blocker is
// proving every function reachable from a party's per-round entry point is
// free of cross-party shared mutable state and iteration-order
// nondeterminism. That proof is this file:
//
//   C1  concurrency readiness. Roots are functions marked
//       `// srds-lint: shard-root` (the Party::on_round / step /
//       boost_step implementations) or declared in the shard_roots.toml
//       manifest. Everything reachable from a root must not: touch
//       file-scope mutable state, hold function-local `static` state,
//       iterate an unordered container (hash order leaks into message
//       emission order), construct an RNG outside src/common/rng, or call
//       a singleton accessor. Each finding carries the call path from the
//       root, so the fix site is obvious.
//   P2  interprocedural hot-path hygiene. P1 stops at the marked
//       function's braces; P2 walks the graph from every hotpath-marked
//       function and applies the same no-throw/no-new/no-std::function
//       discipline to everything reachable (deliver -> on_delivery ->
//       histogram allocation leaks).
//   T2  interprocedural taint. T1 stops at the function body; T2 follows
//       `payload` bytes handed to helpers before validation and flags the
//       helper that reads the corresponding parameter's bytes before its
//       own deserialize/validate — reported with the flow path.
//
// The graph itself is the same AST-free, token-level philosophy as the
// rest of srds-lint: definitions come from taint.hpp's function-body map
// (plus class-context qualification), call sites from ident-followed-by-
// '(' scanning with `Qual::` hints, `Type var(...)` constructor calls and
// make_unique/make_shared<T>. Resolution is deliberately an
// over-approximation: qualifier hint, then same-class member, then
// same-file, then *every* definition with that name; a name with no
// definition in the scanned set is an external call (counted, never
// traversed). Over-approximation errs toward more findings, which is the
// right direction for a readiness gate — the manifest's [allow] section is
// the justified escape hatch.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lex.hpp"
#include "lint.hpp"
#include "taint.hpp"

namespace srds::lint {

/// One call site inside a function body.
struct CallSite {
  std::size_t line = 0;
  std::size_t tok = 0;    // token index of the callee identifier
  std::string name;       // callee name ("step")
  std::string qual_hint;  // innermost `X::` qualifier at the site, "" if none
};

/// One function definition in the scanned set.
struct FuncDef {
  std::size_t file = 0;  // index into CallGraph::files
  FuncBody body;
  std::vector<std::string> params;  // declarator parameter names, in order
  std::vector<CallSite> calls;
};

/// Per-file context the passes need beyond the definitions.
struct FileCtx {
  std::string path;
  Lexed lx;
  /// Mutable file-scope (namespace-scope) variable declarations:
  /// name -> declaration line. const/constexpr/using/typedef/extern and
  /// anything involving parentheses are excluded.
  std::map<std::string, std::size_t> globals;
  /// Names declared with an unordered_{map,set,multimap,multiset} type
  /// anywhere in the file (members included).
  std::set<std::string> unordered_vars;
};

struct CallGraph {
  std::vector<FileCtx> files;
  std::vector<FuncDef> defs;  // in (file, body) order
  std::map<std::string, std::vector<std::size_t>> by_name;
  std::size_t external_calls = 0;  // sites naming no scanned definition

  /// Overload/target resolution fallback chain: qualifier hint ->
  /// same-class member -> same-file -> every definition with the name.
  std::vector<std::size_t> resolve(const FuncDef& caller, const CallSite& cs) const;
};

/// Build the graph from (repo-relative path, content) pairs. Only src/
/// files contribute definitions; others are ignored.
CallGraph build_call_graph(
    const std::vector<std::pair<std::string, std::string>>& files);

/// shard_roots.toml: [roots] functions = [...] declares roots by qualified
/// name (in addition to inline shard-root markers); [allow] entries
/// `Name = "justification"` exclude a function from traversal with a
/// recorded reason.
struct ShardManifest {
  std::vector<std::string> roots;
  std::vector<std::pair<std::string, std::string>> allows;
};

bool parse_shard_manifest(const std::string& text, ShardManifest& out,
                          std::string& error);

/// Reachability wave with parent/root tracking. Public so the locks pass
/// (locks.cpp) can run the same traversal — with the same [allow] stop
/// semantics and call-path rendering — instead of growing a second BFS.
struct Reach {
  std::vector<std::size_t> parent;  // def index, size_t(-1) at roots
  std::vector<std::size_t> root;    // root def index
  std::vector<char> vis;
  std::size_t allowed_skips = 0;
};

Reach reach_from(const CallGraph& cg, const std::vector<std::size_t>& roots,
                 const std::set<std::size_t>& allowed);

/// " -> "-joined qualified names from `d`'s root down to `d` (capped depth).
std::string call_path(const CallGraph& cg, const Reach& r, std::size_t d);

/// C1 root definitions (inline shard-root markers + manifest [roots]) and
/// [allow]-listed definitions, resolved without emitting findings — shared
/// by the DOT exporter and the locks pass's shard-reachability check.
void shard_roots_and_allows(const CallGraph& cg, const ShardManifest* manifest,
                            std::set<std::size_t>& roots,
                            std::set<std::size_t>& allowed);

/// Run C1 + P2 + T2. `manifest` may be null (marker-only roots). Raw
/// findings — severity/suppression post-processing happens in lint_files.
std::vector<Finding> check_callgraph(const CallGraph& cg, const ShardManifest* manifest,
                                     const std::string& manifest_path,
                                     CallGraphStats* stats);

/// DOT export of the shard-reachable subgraph (roots double-circled,
/// allowed nodes dashed) for the CI artifact next to the layering DOT.
std::string call_graph_dot(const CallGraph& cg, const ShardManifest* manifest);

}  // namespace srds::lint

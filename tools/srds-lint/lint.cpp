#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <tuple>

#include "callgraph.hpp"
#include "locks.hpp"
#include "graph.hpp"
#include "lex.hpp"
#include "taint.hpp"

namespace srds::lint {

namespace {

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

struct Suppression {
  std::string rule;
  std::size_t comment_line = 0;
  std::size_t target_line = 0;  // line the suppression covers
  std::string justification;
  bool valid = false;  // known rule + non-empty justification
};

std::vector<Suppression> parse_suppressions(const Lexed& lx) {
  std::vector<Suppression> out;
  for (const Comment& c : lx.comments) {
    std::size_t pos = c.text.find("srds-lint:");
    if (pos == std::string::npos) continue;
    std::size_t a = c.text.find("allow(", pos);
    if (a == std::string::npos) continue;
    std::size_t close = c.text.find(')', a);
    if (close == std::string::npos) continue;
    Suppression sup;
    sup.rule = trim(c.text.substr(a + 6, close - (a + 6)));
    sup.comment_line = c.line;
    // Mandatory justification: "): <text>".
    std::size_t j = close + 1;
    if (j < c.text.size() && c.text[j] == ':') {
      sup.justification = trim(c.text.substr(j + 1));
    }
    sup.valid = find_rule(sup.rule) != nullptr && !sup.justification.empty();
    // Trailing comment covers its own line; a comment-only line covers the
    // next line that carries code.
    if (lx.code_lines.count(c.line)) {
      sup.target_line = c.line;
    } else {
      auto it = lx.code_lines.upper_bound(c.line);
      sup.target_line = (it == lx.code_lines.end()) ? 0 : *it;
    }
    out.push_back(std::move(sup));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule checks. Each takes the lexed file and appends raw findings (before
// severity/suppression post-processing). One function per invariant — new
// per-file rules slot in here; cross-TU passes live in graph.cpp, the
// taint/hot-path passes in taint.cpp.
// ---------------------------------------------------------------------------

void add(std::vector<Finding>& out, const std::string& file, std::size_t line,
         const char* rule, std::string msg) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(msg);
  out.push_back(std::move(f));
}

void check_d1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  const bool rng_home = path_under(path, "src/common") &&
                        path.find("/rng.") != std::string::npos;
  const bool proto = in_protocol_dir(path);
  static const std::set<std::string> kBannedCalls = {"rand", "srand", "time", "clock",
                                                     "gettimeofday"};
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  for (std::size_t i = 0; i < lx.toks.size(); ++i) {
    const Tok& t = lx.toks[i];
    if (t.kind != Tok::kIdent) continue;
    const Tok* prev = i ? &lx.toks[i - 1] : nullptr;
    const Tok* next = (i + 1 < lx.toks.size()) ? &lx.toks[i + 1] : nullptr;
    const bool member_access = prev && (prev->text == "." || prev->text == "->");
    if (!rng_home) {
      if (kBannedCalls.count(t.text) && next && next->text == "(" && !member_access) {
        add(out, path, t.line, "D1",
            t.text + "() reads a nondeterminism source; derive from the run seed via "
                     "src/common/rng instead");
        continue;
      }
      if (t.text == "random_device") {
        add(out, path, t.line, "D1",
            "std::random_device outside src/common/rng breaks seed-reproducibility");
        continue;
      }
      if (t.text == "system_clock") {
        add(out, path, t.line, "D1",
            "chrono::system_clock is wall-clock time; protocol state must depend only "
            "on the run seed");
        continue;
      }
    }
    if (proto && kUnordered.count(t.text)) {
      add(out, path, t.line, "D1",
          t.text + " in protocol code: hash-table iteration order is unspecified and "
                   "would leak into message order; use std::map/std::set or a sorted "
                   "vector");
    }
  }
  if (proto) {
    for (const PpDirective& d : lx.directives) {
      if (d.text.find("include") == std::string::npos) continue;
      if (d.text.find("unordered_") != std::string::npos) {
        add(out, path, d.line, "D1",
            "unordered container include in protocol code; use <map>/<set> or sorted "
            "vectors");
      }
    }
  }
}

void check_b1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  if (path_under(path, "src/net")) return;  // the simulator API layer itself
  if (path == "src/common/message.hpp") return;  // the factory's own home
  for (std::size_t i = 0; i + 1 < lx.toks.size(); ++i) {
    const Tok& t = lx.toks[i];
    if (t.kind != Tok::kIdent || t.text != "Message") continue;
    const std::string& nxt = lx.toks[i + 1].text;
    if (nxt == "{" || nxt == "(") {
      add(out, path, t.line, "B1",
          "raw Message construction outside src/net; use make_msg (common/message.hpp) "
          "so the MsgKind tag and byte accounting stay explicit");
    }
  }
}

void check_s1(const std::string& path, const Lexed& lx, const Config& cfg,
              std::vector<Finding>& out) {
  struct Scope {
    std::string name;
    std::size_t name_line = 0;
    int open_depth = 0;
    std::size_t serialize_line = 0;
    bool has_serialize = false;
    bool has_deserialize = false;
  };
  std::vector<Scope> stack;
  int depth = 0;

  // Pending class-head state: saw struct/class + name, scanning for '{'.
  bool pending = false;
  Scope pend;

  auto finalize = [&](const Scope& sc) {
    if (sc.has_serialize && !sc.has_deserialize) {
      add(out, path, sc.serialize_line, "S1",
          "type '" + sc.name + "' declares serialize() without a matching deserialize()");
    } else if (sc.has_serialize && sc.has_deserialize && !cfg.test_corpus.empty() &&
               cfg.test_corpus.find(sc.name) == std::string::npos) {
      add(out, path, sc.name_line, "S1",
          "serializable type '" + sc.name +
              "' has no round-trip test reference in the test corpus");
    }
  };

  for (std::size_t i = 0; i < lx.toks.size(); ++i) {
    const Tok& t = lx.toks[i];
    if (pending) {
      if (t.text == "{") {
        // Class body opens: this really is a type definition.
        pending = false;
        ++depth;
        pend.open_depth = depth;
        stack.push_back(pend);
        continue;
      }
      // Tokens that may appear in a class head (final, base clause,
      // template arguments). Anything else means this was a forward
      // declaration, an elaborated-type use, a function, an alias... —
      // cancel and let the token fall through to generic handling.
      const bool head_token = t.kind == Tok::kIdent || t.kind == Tok::kNum ||
                              t.text == ":" || t.text == "::" || t.text == "<" ||
                              t.text == ">" || t.text == ",";
      if (head_token) continue;
      pending = false;  // fall through
    }
    if (t.kind == Tok::kIdent && (t.text == "struct" || t.text == "class")) {
      const Tok* prev = i ? &lx.toks[i - 1] : nullptr;
      if (prev && prev->kind == Tok::kIdent && prev->text == "enum") continue;
      if (i + 1 < lx.toks.size() && lx.toks[i + 1].kind == Tok::kIdent) {
        pend = Scope{};
        pend.name = lx.toks[i + 1].text;
        pend.name_line = lx.toks[i + 1].line;
        pending = true;
        ++i;  // consume the name
      }
      continue;
    }
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty() && stack.back().open_depth == depth) {
        finalize(stack.back());
        stack.pop_back();
      }
      if (depth > 0) --depth;
      continue;
    }
    if (t.kind == Tok::kIdent && (t.text == "serialize" || t.text == "deserialize") &&
        !stack.empty() && depth == stack.back().open_depth) {
      const Tok* prev = i ? &lx.toks[i - 1] : nullptr;
      const Tok* next = (i + 1 < lx.toks.size()) ? &lx.toks[i + 1] : nullptr;
      if (next && next->text == "(" && !(prev && (prev->text == "." || prev->text == "->"))) {
        if (t.text == "serialize") {
          stack.back().has_serialize = true;
          stack.back().serialize_line = t.line;
        } else {
          stack.back().has_deserialize = true;
        }
      }
      continue;
    }
  }
  while (!stack.empty()) {  // unbalanced braces: finalize what we saw
    finalize(stack.back());
    stack.pop_back();
  }
}

void check_h1(const std::string& path, const Lexed& lx, std::vector<Finding>& out) {
  if (!is_header_path(path)) return;
  // Guard: the first directive must be `#pragma once`, or an
  // `#ifndef X` / `#define X` pair.
  bool guarded = false;
  for (const PpDirective& d : lx.directives) {
    if (d.text.find("pragma") != std::string::npos &&
        d.text.find("once") != std::string::npos) {
      guarded = true;
      break;
    }
  }
  if (!guarded && lx.directives.size() >= 2) {
    const std::string& a = lx.directives[0].text;
    const std::string& b = lx.directives[1].text;
    guarded = a.find("ifndef") != std::string::npos && b.find("define") != std::string::npos;
  }
  if (!guarded) {
    add(out, path, 1, "H1", "header lacks #pragma once (or an include guard)");
  }
  for (std::size_t i = 0; i + 1 < lx.toks.size(); ++i) {
    if (lx.toks[i].kind == Tok::kIdent && lx.toks[i].text == "using" &&
        lx.toks[i + 1].kind == Tok::kIdent && lx.toks[i + 1].text == "namespace") {
      add(out, path, lx.toks[i].line, "H1",
          "'using namespace' in a header leaks the namespace into every includer");
    }
  }
}

void sort_findings(std::vector<Finding>& all) {
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule table & engine plumbing.
// ---------------------------------------------------------------------------

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kOff: return "off";
    case Severity::kWarn: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "nondeterminism source in protocol code", Severity::kError},
      {"B1", "raw Message construction outside the network layer", Severity::kError},
      {"S1", "serialize without matching deserialize / round-trip test", Severity::kError},
      {"H1", "header hygiene (#pragma once, no using-namespace)", Severity::kError},
      {"L1", "include edge violating the layers.toml module DAG", Severity::kError},
      {"T1", "payload-byte read without prior deserialize/validate", Severity::kError},
      {"P1", "throw/new/std::function inside a hotpath-marked function", Severity::kError},
      {"C1", "shared state / nondeterminism reachable from a shard-root", Severity::kError},
      {"P2", "hot-path violation reachable from a hotpath function", Severity::kError},
      {"T2", "unvalidated payload bytes flowing through helpers", Severity::kError},
      {"C2", "lock discipline: unheld guarded_by access / double-lock / order cycle",
       Severity::kError},
      {"C3", "atomics audit: shared-state RMW, unjustified relaxed, confined escape",
       Severity::kError},
      {"A0", "malformed srds-lint suppression", Severity::kError},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const RuleInfo& r : rules()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

Severity Config::severity_of(const std::string& rule) const {
  for (const auto& [id, sev] : overrides) {
    if (id == rule) return sev;
  }
  const RuleInfo* r = find_rule(rule);
  return r ? r->default_severity : Severity::kError;
}

std::vector<Finding> lint_file(const std::string& raw_path, const std::string& content,
                               const Config& cfg) {
  const std::string path = normalize_path(raw_path);

  // Per-file rules are protocol-code rules: they apply to src/ only. Files
  // outside it (tests building adversarial raw Messages, bench drivers, the
  // linter's own sources, whose doc comments *mention* markers) still join
  // the scan set for the cross-TU L1 graph, but carry none of the per-file
  // obligations.
  if (!path_under(path, "src")) return {};
  const Lexed lx = lex(content);

  std::vector<Finding> raw;
  check_d1(path, lx, raw);
  check_b1(path, lx, raw);
  check_s1(path, lx, cfg, raw);
  check_h1(path, lx, raw);
  check_t1(path, lx, raw);
  check_p1(path, lx, raw);

  // Apply suppressions; malformed ones become A0 findings and keep the
  // original finding alive.
  const std::vector<Suppression> sups = parse_suppressions(lx);
  for (const Suppression& s : sups) {
    if (s.valid) {
      for (Finding& f : raw) {
        if (f.rule == s.rule && f.line == s.target_line) {
          f.suppressed = true;
          f.justification = s.justification;
        }
      }
    } else {
      std::string why = find_rule(s.rule) == nullptr
                            ? "unknown rule '" + s.rule + "'"
                            : "missing justification (write `srds-lint: allow(" + s.rule +
                                  "): <why this is safe>`)";
      add(raw, path, s.comment_line, "A0", "malformed suppression: " + why);
    }
  }

  // Severity resolution; kOff findings vanish.
  std::vector<Finding> out;
  for (Finding& f : raw) {
    Severity sev = cfg.severity_of(f.rule);
    if (sev == Severity::kOff) continue;
    f.severity = sev;
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<Finding> lint_files(
    const std::vector<std::pair<std::string, std::string>>& files, const Config& cfg,
    CallGraphStats* cg_stats, LockStats* lock_stats) {
  std::vector<Finding> all;
  for (const auto& [path, content] : files) {
    std::vector<Finding> fs = lint_file(path, content, cfg);
    all.insert(all.end(), std::make_move_iterator(fs.begin()),
               std::make_move_iterator(fs.end()));
  }

  // Call-graph passes (C1 shard readiness, P2/T2 interprocedural hotpath
  // and taint). Roots come from inline shard-root/hotpath markers plus the
  // shard_roots.toml manifest when given; inline suppressions apply to the
  // cross-TU findings exactly as to per-file ones.
  {
    std::vector<Finding> raw;
    ShardManifest manifest;
    const ShardManifest* mptr = nullptr;
    if (!cfg.shard_manifest.empty()) {
      std::string error;
      if (!parse_shard_manifest(cfg.shard_manifest, manifest, error)) {
        Finding f;
        f.file = normalize_path(cfg.shard_manifest_path);
        f.line = 0;
        f.rule = "C1";
        f.message = "bad shard-roots manifest: " + error;
        raw.push_back(std::move(f));
      } else {
        mptr = &manifest;
      }
    }
    const CallGraph cg = build_call_graph(files);
    std::vector<Finding> cgf = check_callgraph(
        cg, mptr, normalize_path(cfg.shard_manifest_path), cg_stats);
    raw.insert(raw.end(), std::make_move_iterator(cgf.begin()),
               std::make_move_iterator(cgf.end()));

    // C2/C3 concurrency passes on the same graph. Inline guarded_by/confined
    // annotations alone can seed them; the locks.toml manifest adds the
    // [shared]/[allow-relaxed]/[allow] lists.
    LocksManifest locks_manifest;
    const LocksManifest* lptr = nullptr;
    if (!cfg.locks_manifest.empty()) {
      std::string error;
      if (!parse_locks_manifest(cfg.locks_manifest, locks_manifest, error)) {
        Finding f;
        f.file = normalize_path(cfg.locks_manifest_path);
        f.line = 0;
        f.rule = "C2";
        f.message = "bad locks manifest: " + error;
        raw.push_back(std::move(f));
      } else {
        lptr = &locks_manifest;
      }
    }
    std::vector<Finding> lkf = check_locks(
        cg, lptr, normalize_path(cfg.locks_manifest_path), mptr, lock_stats);
    raw.insert(raw.end(), std::make_move_iterator(lkf.begin()),
               std::make_move_iterator(lkf.end()));
    std::map<std::string, std::vector<Suppression>> sups_by_file;
    for (const FileCtx& fc : cg.files) sups_by_file[fc.path] = parse_suppressions(fc.lx);
    for (Finding& f : raw) {
      auto it = sups_by_file.find(f.file);
      if (it != sups_by_file.end()) {
        for (const Suppression& s : it->second) {
          if (s.valid && s.rule == f.rule && s.target_line == f.line) {
            f.suppressed = true;
            f.justification = s.justification;
          }
        }
      }
      Severity sev = cfg.severity_of(f.rule);
      if (sev == Severity::kOff) continue;
      f.severity = sev;
      all.push_back(std::move(f));
    }
  }

  // Cross-TU layering pass. L1 has no inline suppression (kept back-edges
  // are declared in the manifest itself), so its findings only go through
  // severity resolution.
  if (!cfg.layers_manifest.empty()) {
    std::vector<Finding> raw;
    LayerManifest manifest;
    std::string error;
    if (!parse_layers(cfg.layers_manifest, manifest, error)) {
      Finding f;
      f.file = normalize_path(cfg.layers_manifest_path);
      f.line = 0;
      f.rule = "L1";
      f.message = "bad layers manifest: " + error;
      raw.push_back(std::move(f));
    } else {
      raw = check_layers(build_dep_graph(files), manifest);
    }
    for (Finding& f : raw) {
      Severity sev = cfg.severity_of(f.rule);
      if (sev == Severity::kOff) continue;
      f.severity = sev;
      all.push_back(std::move(f));
    }
  }

  sort_findings(all);
  return all;
}

bool has_blocking(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    if (!f.suppressed && f.severity == Severity::kError) return true;
  }
  return false;
}

obs::Json findings_json(const std::vector<Finding>& findings, std::size_t files_scanned,
                        const obs::Json* stats) {
  std::size_t errors = 0, warnings = 0, suppressed = 0;
  obs::Json arr = obs::Json::array();
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
    } else if (f.severity == Severity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
    obs::Json j = obs::Json::object();
    j.set("file", f.file);
    j.set("line", static_cast<unsigned long long>(f.line));
    j.set("rule", f.rule);
    j.set("severity", severity_name(f.severity));
    j.set("message", f.message);
    j.set("suppressed", f.suppressed);
    if (f.suppressed) j.set("justification", f.justification);
    arr.push_back(std::move(j));
  }
  obs::Json summary = obs::Json::object();
  summary.set("files", static_cast<unsigned long long>(files_scanned));
  summary.set("errors", static_cast<unsigned long long>(errors));
  summary.set("warnings", static_cast<unsigned long long>(warnings));
  summary.set("suppressed", static_cast<unsigned long long>(suppressed));

  obs::Json out = obs::Json::object();
  out.set("tool", "srds-lint");
  out.set("schema", 2);
  out.set("summary", std::move(summary));
  out.set("findings", std::move(arr));
  if (stats) out.set("stats", *stats);
  return out;
}

std::string human_report(const std::vector<Finding>& findings, std::size_t files_scanned,
                         bool verbose_suppressed) {
  std::string out;
  std::size_t errors = 0, warnings = 0, suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (verbose_suppressed) {
        out += f.file + ":" + std::to_string(f.line) + ": suppressed: [" + f.rule + "] " +
               f.message + " (justification: " + f.justification + ")\n";
      }
      continue;
    }
    (f.severity == Severity::kError ? errors : warnings) += 1;
    out += f.file + ":" + std::to_string(f.line) + ": " + severity_name(f.severity) +
           ": [" + f.rule + "] " + f.message + "\n";
  }
  out += "srds-lint: " + std::to_string(files_scanned) + " files, " +
         std::to_string(errors) + " errors, " + std::to_string(warnings) + " warnings, " +
         std::to_string(suppressed) + " suppressed\n";
  return out;
}

}  // namespace srds::lint

// C2 (lock discipline) and C3 (atomics audit) — the concurrency passes
// built on the callgraph.hpp call graph. Together they are the static
// precondition for sharding the simulator (ROADMAP item 1): TSan only
// catches races on interleavings a test happens to exercise; these passes
// check the locking/atomics discipline on every path, every build.
//
// C2 — lock discipline over `// srds-lint: guarded_by(mu)` field
// annotations:
//   * unheld access: a read/write of an annotated field, in a function a
//     caller can enter without the named mutex held (callers are walked
//     through the call graph from public entry points — definitions with
//     no incoming edge — propagating only through call sites *outside* a
//     guard scope). Locally-held accesses and functions only ever entered
//     under the lock are clean. Reported with the unlocked call path.
//   * double-lock: a second acquisition of a mutex already held — nested
//     guard scopes in one body, or a guard in a function reachable from a
//     call site inside a guard scope (std::mutex is not recursive; this is
//     a guaranteed deadlock). Reported with the held call path.
//   * lock-order cycle: the whole-program lock-order graph has an edge
//     A -> B whenever B is acquired (directly or through calls) while A is
//     held; any cycle is a potential deadlock. The shortest cycle through
//     each edge is reported with each edge's acquisition site and call
//     path, and the graph exports as LINT_lockorder.dot.
//
// Lock *identity* is token-level: a guard argument `mu_` inside a member
// of class C that declares a mutex member `mu_` is "C::mu_"; anything else
// keeps its raw name (free mutexes agree across TUs by name). Guard scopes
// are lock_guard/unique_lock/scoped_lock/shared_lock declarations, held
// from the declaration to the end of the enclosing brace scope
// (defer_lock-constructed locks are not counted as held).
//
// C3 — atomics audit over the locks.toml manifest:
//   * non-atomic RMW: `x++` / `x += e` / `x = x op ...` on a [shared]
//     field with no protection, and the load-store form `x = x + ...` even
//     on a std::atomic field (two atomic ops, not one RMW — lost updates).
//   * unprotected shared state: a [shared] field that is neither
//     std::atomic nor guarded_by-annotated (flagged at the declaration
//     when no RMW site pins it).
//   * relaxed ordering: every `memory_order_relaxed` site must be inside a
//     function matched by an [allow-relaxed] entry with a justification —
//     the obs counters/gauges are statistics nothing orders against, and
//     that claim is recorded in the manifest, not in tribal memory.
//   * confinement: `// srds-lint: confined(owner)` marks mutable state
//     owned by a single thread (the svc daemon loop, the trace sinks). A
//     confined field accessed from a C1 shard-reachable function is
//     flagged with the call path — single-thread state crossing into the
//     sharded surface needs atomics or a mutex first.
//
// Annotations bind to the field declaration on the same line (trailing
// comment) or the next code line (comment-only line), exactly like
// suppressions; a guarded_by/confined marker that binds to no field, or
// names no mutex member of the owning class, is itself a finding — stale
// markers are never silently dropped (same contract as shard-root/hotpath
// markers).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "lint.hpp"

namespace srds::lint {

/// tools/srds-lint/locks.toml:
///   [shared]        fields = ["Class::field", ...]  — cross-thread state
///   [allow-relaxed] "Class::*" = "justification"    — relaxed whitelist
///                   (exact function names also accepted)
///   [allow]         "Func" = "justification"        — excluded from the
///                   C2 traversals and body scans, recorded reason
struct LocksManifest {
  std::vector<std::string> shared_fields;
  std::vector<std::pair<std::string, std::string>> relaxed_allows;
  std::vector<std::pair<std::string, std::string>> allows;
};

bool parse_locks_manifest(const std::string& text, LocksManifest& out,
                          std::string& error);

/// Run C2 + C3 over the call graph. `manifest` may be null (the
/// annotation-driven C2 checks and the relaxed audit still run); the
/// shard manifest feeds the confined-reachability check with the same
/// roots C1 uses. Raw findings — severity/suppression post-processing
/// happens in lint_files.
std::vector<Finding> check_locks(const CallGraph& cg, const LocksManifest* manifest,
                                 const std::string& manifest_path,
                                 const ShardManifest* shard_manifest,
                                 LockStats* stats);

/// DOT export of the lock-order graph (cycle edges red, labeled with the
/// acquisition site) for the CI artifact next to the call-graph DOT.
std::string lock_order_dot(const CallGraph& cg, const LocksManifest* manifest);

}  // namespace srds::lint

// srds-lint CLI. Scans C++ sources for protocol-invariant violations.
//
// Usage:
//   srds-lint [options] <file-or-dir>...
//     --json FILE          write the machine-readable findings artifact
//     --tests-dir DIR      enable the S1 round-trip-reference check against
//                          the test sources under DIR
//     --severity R=LEVEL   override a rule (LEVEL: error|warn|off); repeatable
//     --show-suppressed    list suppressed findings (with justifications)
//     --list-rules         print the rule table and exit
//     --quiet              summary line only
//
// Exit code: 0 when no unsuppressed error-severity findings, 1 otherwise,
// 2 on usage/IO errors. Paths are reported relative to the invocation
// directory, '/'-separated, so CI output is stable across checkouts.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" || e == ".h" ||
         e == ".hh" || e == ".hxx";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Collect source files under `root` (or `root` itself), sorted for
/// deterministic report and JSON ordering.
bool collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end && !ec;
         it.increment(ec)) {
      if (it->is_regular_file(ec) && has_source_ext(it->path())) out.push_back(it->path());
    }
    return !ec;
  }
  if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
    return true;
  }
  return false;
}

bool parse_severity(const std::string& arg, srds::lint::Config& cfg) {
  std::size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string rule = arg.substr(0, eq);
  const std::string level = arg.substr(eq + 1);
  if (!srds::lint::find_rule(rule)) return false;
  srds::lint::Severity sev;
  if (level == "error") {
    sev = srds::lint::Severity::kError;
  } else if (level == "warn" || level == "warning") {
    sev = srds::lint::Severity::kWarn;
  } else if (level == "off") {
    sev = srds::lint::Severity::kOff;
  } else {
    return false;
  }
  cfg.overrides.emplace_back(rule, sev);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  std::string tests_dir;
  bool quiet = false, show_suppressed = false;
  srds::lint::Config cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "srds-lint: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--json") {
      json_path = need_value("--json");
    } else if (a == "--tests-dir") {
      tests_dir = need_value("--tests-dir");
    } else if (a == "--severity") {
      if (!parse_severity(need_value("--severity"), cfg)) {
        std::cerr << "srds-lint: bad --severity (want RULE=error|warn|off)\n";
        return 2;
      }
    } else if (a == "--list-rules") {
      for (const auto& r : srds::lint::rules()) {
        std::printf("%-4s %-8s %s\n", r.id, srds::lint::severity_name(r.default_severity),
                    r.title);
      }
      return 0;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--show-suppressed") {
      show_suppressed = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "srds-lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: srds-lint [--json FILE] [--tests-dir DIR] [--severity R=LEVEL]\n"
                 "                 [--show-suppressed] [--list-rules] [--quiet] <path>...\n";
    return 2;
  }

  if (!tests_dir.empty()) {
    std::vector<fs::path> test_files;
    if (!collect(tests_dir, test_files)) {
      std::cerr << "srds-lint: cannot read tests dir '" << tests_dir << "'\n";
      return 2;
    }
    std::sort(test_files.begin(), test_files.end());
    for (const fs::path& p : test_files) {
      std::string content;
      if (read_file(p, content)) cfg.test_corpus += content;
    }
  }

  std::vector<fs::path> files;
  for (const std::string& r : roots) {
    if (!collect(fs::path(r), files)) {
      std::cerr << "srds-lint: cannot read '" << r << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> inputs;
  inputs.reserve(files.size());
  for (const fs::path& p : files) {
    std::string content;
    if (!read_file(p, content)) {
      std::cerr << "srds-lint: cannot read '" << p.string() << "'\n";
      return 2;
    }
    inputs.emplace_back(p.lexically_normal().generic_string(), std::move(content));
  }

  const std::vector<srds::lint::Finding> findings = srds::lint::lint_files(inputs, cfg);

  if (!quiet) {
    std::fputs(srds::lint::human_report(findings, inputs.size(), show_suppressed).c_str(),
               stdout);
  } else {
    const std::string rep = srds::lint::human_report(findings, inputs.size(), false);
    const std::size_t nl = rep.rfind('\n', rep.size() - 2);
    std::fputs(rep.substr(nl == std::string::npos ? 0 : nl + 1).c_str(), stdout);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "srds-lint: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << srds::lint::findings_json(findings, inputs.size()).dump(2) << "\n";
  }

  return srds::lint::has_blocking(findings) ? 1 : 0;
}

// srds-lint CLI. Scans C++ sources for protocol-invariant violations.
//
// Usage:
//   srds-lint [options] [<file-or-dir>...]
//     --json FILE          write the machine-readable findings artifact
//                          (--json-out is accepted as an alias; parent
//                          directories are created as needed)
//     --tests-dir DIR      enable the S1 round-trip-reference check against
//                          the test sources under DIR
//     --layers FILE        layers.toml module-DAG manifest; enables the
//                          cross-TU L1 layering pass
//     --shard-roots FILE   shard_roots.toml manifest: extra C1 roots plus
//                          the [allow] escape hatch for the call-graph
//                          passes (inline markers work without it)
//     --locks FILE         locks.toml manifest: [shared] fields,
//                          [allow-relaxed] justifications and the [allow]
//                          escape hatch for the C2/C3 concurrency passes
//                          (inline guarded_by/confined markers work
//                          without it)
//     --compile-db FILE    compile_commands.json; its translation units
//                          (plus their transitively reachable quoted
//                          includes) join the scan set
//     --dot FILE           export the module dependency graph as Graphviz
//     --callgraph-dot FILE export the shard-reachable call graph as
//                          Graphviz (roots double-circled, allowed dashed)
//     --lockorder-dot FILE export the lock-order graph as Graphviz (edges
//                          labeled with the acquisition site, cycles red)
//     --baseline FILE      ratchet gate: fail only on findings not in FILE,
//                          and on stale FILE entries (fixed but listed)
//     --write-baseline FILE  record current blocking findings into FILE
//     --severity R=LEVEL   override a rule (LEVEL: error|warn|off); repeatable
//     --show-suppressed    list suppressed findings (with justifications)
//     --list-rules         print the rule table and exit
//     --quiet              summary line only
//
// Exit code: 0 when the gate passes (no unsuppressed error-severity
// findings; with --baseline: none *beyond* the baseline and no stale
// entries), 1 otherwise, 2 on usage/IO errors. Paths are reported relative
// to the invocation directory, '/'-separated, so CI output is stable
// across checkouts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "callgraph.hpp"
#include "graph.hpp"
#include "locks.hpp"
#include "lex.hpp"
#include "lint.hpp"
#include "obs/metrics.hpp"

namespace fs = std::filesystem;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" || e == ".h" ||
         e == ".hh" || e == ".hxx";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Collect source files under `root` (or `root` itself), sorted for
/// deterministic report and JSON ordering.
bool collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end && !ec;
         it.increment(ec)) {
      if (it->is_regular_file(ec) && has_source_ext(it->path())) out.push_back(it->path());
    }
    return !ec;
  }
  if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
    return true;
  }
  return false;
}

bool parse_severity(const std::string& arg, srds::lint::Config& cfg) {
  std::size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string rule = arg.substr(0, eq);
  const std::string level = arg.substr(eq + 1);
  if (!srds::lint::find_rule(rule)) return false;
  srds::lint::Severity sev;
  if (level == "error") {
    sev = srds::lint::Severity::kError;
  } else if (level == "warn" || level == "warning") {
    sev = srds::lint::Severity::kWarn;
  } else if (level == "off") {
    sev = srds::lint::Severity::kOff;
  } else {
    return false;
  }
  cfg.overrides.emplace_back(rule, sev);
  return true;
}

/// Pull every `"file": "<path>"` value out of a compile_commands.json.
/// The compile database is machine-written (one "file" key per entry), so
/// a focused scan beats dragging in a full parser here.
std::vector<std::string> compile_db_files(const std::string& text) {
  std::vector<std::string> out;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == ':')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '"') continue;
    std::string val;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      val.push_back(text[pos]);
      ++pos;
    }
    out.push_back(std::move(val));
  }
  return out;
}

/// Repo-relative '/'-separated path for an absolute or relative one, or ""
/// when it lies outside the invocation directory.
std::string repo_relative(const fs::path& p) {
  std::error_code ec;
  fs::path rel = p.is_absolute() ? fs::proximate(p, fs::current_path(), ec) : p;
  if (ec) return "";
  const std::string s = rel.lexically_normal().generic_string();
  if (s.empty() || s == "." || s.rfind("..", 0) == 0 || fs::path(s).is_absolute()) return "";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path, tests_dir, layers_path, compile_db_path, dot_path;
  std::string shard_roots_path, callgraph_dot_path;
  std::string locks_path, lockorder_dot_path;
  std::string baseline_path, write_baseline_path;
  bool quiet = false, show_suppressed = false;
  srds::lint::Config cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "srds-lint: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--json" || a == "--json-out") {
      json_path = need_value(a.c_str());
    } else if (a == "--tests-dir") {
      tests_dir = need_value("--tests-dir");
    } else if (a == "--layers") {
      layers_path = need_value("--layers");
    } else if (a == "--shard-roots") {
      shard_roots_path = need_value("--shard-roots");
    } else if (a == "--locks") {
      locks_path = need_value("--locks");
    } else if (a == "--compile-db") {
      compile_db_path = need_value("--compile-db");
    } else if (a == "--dot") {
      dot_path = need_value("--dot");
    } else if (a == "--callgraph-dot") {
      callgraph_dot_path = need_value("--callgraph-dot");
    } else if (a == "--lockorder-dot") {
      lockorder_dot_path = need_value("--lockorder-dot");
    } else if (a == "--baseline") {
      baseline_path = need_value("--baseline");
    } else if (a == "--write-baseline") {
      write_baseline_path = need_value("--write-baseline");
    } else if (a == "--severity") {
      if (!parse_severity(need_value("--severity"), cfg)) {
        std::cerr << "srds-lint: bad --severity (want RULE=error|warn|off)\n";
        return 2;
      }
    } else if (a == "--list-rules") {
      for (const auto& r : srds::lint::rules()) {
        std::printf("%-4s %-8s %s\n", r.id, srds::lint::severity_name(r.default_severity),
                    r.title);
      }
      return 0;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--show-suppressed") {
      show_suppressed = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "srds-lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty() && compile_db_path.empty()) {
    std::cerr << "usage: srds-lint [--json FILE] [--tests-dir DIR] [--layers FILE]\n"
                 "                 [--shard-roots FILE] [--locks FILE] [--compile-db FILE]\n"
                 "                 [--dot FILE] [--callgraph-dot FILE]\n"
                 "                 [--lockorder-dot FILE] [--baseline FILE]\n"
                 "                 [--write-baseline FILE] [--severity R=LEVEL]\n"
                 "                 [--show-suppressed] [--list-rules] [--quiet] <path>...\n";
    return 2;
  }
  if (!baseline_path.empty() && !write_baseline_path.empty()) {
    std::cerr << "srds-lint: --baseline and --write-baseline are mutually exclusive\n";
    return 2;
  }

  const auto t_start = std::chrono::steady_clock::now();

  if (!tests_dir.empty()) {
    std::vector<fs::path> test_files;
    if (!collect(tests_dir, test_files)) {
      std::cerr << "srds-lint: cannot read tests dir '" << tests_dir << "'\n";
      return 2;
    }
    std::sort(test_files.begin(), test_files.end());
    for (const fs::path& p : test_files) {
      std::string content;
      if (read_file(p, content)) cfg.test_corpus += content;
    }
  }

  if (!layers_path.empty()) {
    if (!read_file(layers_path, cfg.layers_manifest) || cfg.layers_manifest.empty()) {
      std::cerr << "srds-lint: cannot read layers manifest '" << layers_path << "'\n";
      return 2;
    }
    cfg.layers_manifest_path = repo_relative(fs::path(layers_path));
    if (cfg.layers_manifest_path.empty()) cfg.layers_manifest_path = layers_path;
  }

  if (!shard_roots_path.empty()) {
    if (!read_file(shard_roots_path, cfg.shard_manifest) || cfg.shard_manifest.empty()) {
      std::cerr << "srds-lint: cannot read shard-roots manifest '" << shard_roots_path
                << "'\n";
      return 2;
    }
    cfg.shard_manifest_path = repo_relative(fs::path(shard_roots_path));
    if (cfg.shard_manifest_path.empty()) cfg.shard_manifest_path = shard_roots_path;
  }

  if (!locks_path.empty()) {
    if (!read_file(locks_path, cfg.locks_manifest) || cfg.locks_manifest.empty()) {
      std::cerr << "srds-lint: cannot read locks manifest '" << locks_path << "'\n";
      return 2;
    }
    cfg.locks_manifest_path = repo_relative(fs::path(locks_path));
    if (cfg.locks_manifest_path.empty()) cfg.locks_manifest_path = locks_path;
  }

  std::vector<fs::path> files;
  for (const std::string& r : roots) {
    if (!collect(fs::path(r), files)) {
      std::cerr << "srds-lint: cannot read '" << r << "'\n";
      return 2;
    }
  }
  if (!compile_db_path.empty()) {
    std::string db;
    if (!read_file(compile_db_path, db)) {
      std::cerr << "srds-lint: cannot read compile database '" << compile_db_path << "'\n";
      return 2;
    }
    for (const std::string& f : compile_db_files(db)) {
      const fs::path p(f);
      if (has_source_ext(p) && !repo_relative(p).empty()) files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> inputs;
  std::set<std::string> seen;
  inputs.reserve(files.size());
  for (const fs::path& p : files) {
    std::string rel = repo_relative(p);
    if (rel.empty()) rel = p.lexically_normal().generic_string();
    if (!seen.insert(rel).second) continue;
    std::string content;
    if (!read_file(p, content)) {
      std::cerr << "srds-lint: cannot read '" << p.string() << "'\n";
      return 2;
    }
    inputs.emplace_back(std::move(rel), std::move(content));
  }

  // Close the scan set over quoted includes so the L1 graph sees headers
  // even when the compile database lists only translation units. Includes
  // resolve the way the build does: against src/ and the includer's dir.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string includer = inputs[i].first;
    const srds::lint::Lexed lx = srds::lint::lex(inputs[i].second);
    for (const auto& d : lx.directives) {
      const std::string target = srds::lint::quoted_include_target(d);
      if (target.empty()) continue;
      const fs::path base(includer);
      for (const fs::path& cand :
           {fs::path("src") / target, base.parent_path() / target}) {
        const std::string rel = repo_relative(cand);
        if (rel.empty() || seen.count(rel)) continue;
        std::string content;
        if (!read_file(cand, content)) continue;
        seen.insert(rel);
        inputs.emplace_back(rel, std::move(content));
        break;
      }
    }
  }
  std::sort(inputs.begin(), inputs.end());

  const auto t_io = std::chrono::steady_clock::now();
  srds::lint::CallGraphStats cg_stats;
  srds::lint::LockStats lock_stats;
  const std::vector<srds::lint::Finding> findings =
      srds::lint::lint_files(inputs, cfg, &cg_stats, &lock_stats);
  const auto t_lint = std::chrono::steady_clock::now();

  if (!dot_path.empty()) {
    const std::string dot = srds::lint::dep_graph_dot(srds::lint::build_dep_graph(inputs));
    if (!srds::lint::write_text_file(dot_path, dot)) {
      std::cerr << "srds-lint: cannot write '" << dot_path << "'\n";
      return 2;
    }
  }

  if (!callgraph_dot_path.empty()) {
    srds::lint::ShardManifest shard_manifest;
    const srds::lint::ShardManifest* mptr = nullptr;
    std::string error;
    if (!cfg.shard_manifest.empty() &&
        srds::lint::parse_shard_manifest(cfg.shard_manifest, shard_manifest, error)) {
      mptr = &shard_manifest;
    }
    const std::string dot =
        srds::lint::call_graph_dot(srds::lint::build_call_graph(inputs), mptr);
    if (!srds::lint::write_text_file(callgraph_dot_path, dot)) {
      std::cerr << "srds-lint: cannot write '" << callgraph_dot_path << "'\n";
      return 2;
    }
  }

  if (!lockorder_dot_path.empty()) {
    srds::lint::LocksManifest locks_manifest;
    const srds::lint::LocksManifest* lptr = nullptr;
    std::string error;
    if (!cfg.locks_manifest.empty() &&
        srds::lint::parse_locks_manifest(cfg.locks_manifest, locks_manifest, error)) {
      lptr = &locks_manifest;
    }
    const std::string dot =
        srds::lint::lock_order_dot(srds::lint::build_call_graph(inputs), lptr);
    if (!srds::lint::write_text_file(lockorder_dot_path, dot)) {
      std::cerr << "srds-lint: cannot write '" << lockorder_dot_path << "'\n";
      return 2;
    }
  }

  if (!write_baseline_path.empty()) {
    const srds::lint::Baseline b = srds::lint::make_baseline(findings);
    if (!srds::lint::write_text_file(write_baseline_path,
                                     srds::lint::baseline_json(b).dump(2) + "\n")) {
      std::cerr << "srds-lint: cannot write '" << write_baseline_path << "'\n";
      return 2;
    }
    std::printf("srds-lint: wrote baseline with %zu entr%s to %s\n", b.entries.size(),
                b.entries.size() == 1 ? "y" : "ies", write_baseline_path.c_str());
  }

  srds::lint::Baseline baseline;
  srds::lint::BaselineDiff diff;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "srds-lint: cannot read baseline '" << baseline_path << "'\n";
      return 2;
    }
    std::string error;
    if (!srds::lint::parse_baseline(text, baseline, error)) {
      std::cerr << "srds-lint: " << baseline_path << ": " << error << "\n";
      return 2;
    }
    diff = srds::lint::diff_baseline(findings, baseline);
    have_baseline = true;
  }

  if (!quiet) {
    std::fputs(srds::lint::human_report(findings, inputs.size(), show_suppressed).c_str(),
               stdout);
  } else {
    const std::string rep = srds::lint::human_report(findings, inputs.size(), false);
    const std::size_t nl = rep.rfind('\n', rep.size() - 2);
    std::fputs(rep.substr(nl == std::string::npos ? 0 : nl + 1).c_str(), stdout);
  }
  if (have_baseline) {
    for (const auto& e : diff.stale) {
      std::printf("%s:%zu: stale baseline entry: [%s] fixed but still listed; refresh "
                  "with --write-baseline %s\n",
                  e.file.c_str(), e.line, e.rule.c_str(), baseline_path.c_str());
    }
    std::printf("srds-lint: baseline %s: %zu listed, %zu new, %zu stale\n",
                baseline_path.c_str(), baseline.entries.size(), diff.fresh.size(),
                diff.stale.size());
  }

  // Per-rule counts + pass timings through the obs metrics registry, so the
  // LINT_*.json stats block is the same shape downstream tooling already
  // reads from the bench artifacts. Counts are deterministic; timings are
  // wall-clock by nature (steady_clock durations, not time-of-day).
  srds::obs::Registry registry;
  registry.counter("lint_files_scanned").inc(inputs.size());
  for (const auto& r : srds::lint::rules()) {
    auto& errors = registry.counter("lint_violations", {{"rule", r.id}});
    auto& warns = registry.counter("lint_warnings", {{"rule", r.id}});
    auto& supp = registry.counter("lint_suppressed", {{"rule", r.id}});
    for (const auto& f : findings) {
      if (f.rule != r.id) continue;
      if (f.suppressed) {
        supp.inc();
      } else if (f.severity == srds::lint::Severity::kError) {
        errors.inc();
      } else {
        warns.inc();
      }
    }
  }
  if (have_baseline) {
    registry.counter("lint_baseline_listed").inc(baseline.entries.size());
    registry.counter("lint_baseline_new").inc(diff.fresh.size());
    registry.counter("lint_baseline_stale").inc(diff.stale.size());
  }
  // Call-graph census (deterministic counts; the C1/P2/T2 passes ran inside
  // lint_files).
  registry.counter("lint_callgraph_functions").inc(cg_stats.functions);
  registry.counter("lint_callgraph_call_edges").inc(cg_stats.call_edges);
  registry.counter("lint_callgraph_external_calls").inc(cg_stats.external_calls);
  registry.counter("lint_callgraph_shard_roots").inc(cg_stats.shard_roots);
  registry.counter("lint_callgraph_hotpath_funcs").inc(cg_stats.hotpath_funcs);
  registry.counter("lint_callgraph_shard_reachable").inc(cg_stats.shard_reachable);
  registry.counter("lint_callgraph_hotpath_reachable").inc(cg_stats.hotpath_reachable);
  registry.counter("lint_callgraph_allowed_skips").inc(cg_stats.allowed_skips);
  // Locks-pass census (C2/C3; same determinism contract).
  registry.counter("lint_locks_annotated_fields").inc(lock_stats.annotated_fields);
  registry.counter("lint_locks_lock_edges").inc(lock_stats.lock_edges);
  registry.counter("lint_locks_order_cycles").inc(lock_stats.order_cycles);
  registry.counter("lint_locks_relaxed_allows").inc(lock_stats.relaxed_allows);
  const auto ms = [](auto d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  registry.gauge("lint_pass_ms", {{"pass", "io"}}).set(ms(t_io - t_start));
  registry.gauge("lint_pass_ms", {{"pass", "lint"}}).set(ms(t_lint - t_io));
  registry.gauge("lint_pass_ms", {{"pass", "total"}})
      .set(ms(std::chrono::steady_clock::now() - t_start));

  if (!json_path.empty()) {
    const srds::obs::Json stats = registry.to_json();
    const std::string doc =
        srds::lint::findings_json(findings, inputs.size(), &stats).dump(2) + "\n";
    if (!srds::lint::write_text_file(json_path, doc)) {
      std::cerr << "srds-lint: cannot write '" << json_path << "'\n";
      return 2;
    }
  }

  if (have_baseline) return (diff.fresh.empty() && diff.stale.empty()) ? 0 : 1;
  return srds::lint::has_blocking(findings) ? 1 : 0;
}

// T1 (adversarial-input taint) and P1 (hot-path hygiene) passes, plus the
// shared token-level function-body map and marker machinery the call-graph
// passes (C1/P2/T2, callgraph.hpp) build on.
//
// T1 — every byte a party acts on is adversary-controlled until it has
// passed a bounds-checked deserialization (the Reader contract in
// common/serial.hpp, untag_body, a deserialize()/validate() routine).
// Within the protocol directories (src/ba, src/consensus, src/srds,
// src/mpc) any function that reads `payload` *bytes* — indexing,
// .data()/.begin()/iteration, or mem* calls over the buffer — without a
// prior validation call in the same function body is flagged. Reading
// .size()/.empty() and handing the payload to a helper (whose own body T1
// checks when it is in scope) are not byte reads.
//
// P1 — functions marked `// srds-lint: hotpath` (the simulator delivery
// loop, SRDS aggregation) must not `throw`, use `new`, or construct a
// `std::function`: those allocate or unwind on the per-message path that
// the per-party communication accounting multiplies by n.
//
// Markers may name their target — `// srds-lint: hotpath(Simulator::deliver)`
// — in which case the marker goes stale (and is reported) when the named
// function is deleted or renamed. Unnamed markers must sit inside or within
// kMarkerAttachWindow lines above their function body; beyond that they are
// stale too, never silently dropped.
//
// The body map is a brace-matching heuristic, not an AST: a '{' opening
// after a ')' (with only declarator trailer tokens between) starts a
// function body unless the call-ish name is a control keyword or a lambda
// introducer. Lambda bodies are attributed to their enclosing function.
// Constructor bodies hop over member-initializer lists to the real
// declarator, and definitions inside a class body pick up `Class::` in
// their qualified name.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lex.hpp"
#include "lint.hpp"

namespace srds::lint {

struct FuncBody {
  std::string name;        // best-effort declarator name ("deliver")
  std::string qual;        // qualified chain ("Simulator::deliver")
  std::size_t open_line;   // line of the body '{'
  std::size_t open_tok;    // token index of '{'
  std::size_t close_tok;   // token index of the matching '}' (or last token)
  std::size_t close_line;  // line of that token
  std::size_t lparen_tok;  // token index of the declarator '(' (params start)
  std::size_t rparen_tok;  // token index of the declarator ')'
};

/// All top-level function bodies of a lexed file, in order.
std::vector<FuncBody> function_bodies(const Lexed& lx);

/// A `// srds-lint: <kind>` or `// srds-lint: <kind>(Name)` comment.
struct Marker {
  std::string kind;  // "hotpath" or "shard-root"
  std::string name;  // qualified name from the (...) form; "" when unnamed
  std::size_t line;
};

/// Unnamed markers must attach to a body opening within this many lines.
constexpr std::size_t kMarkerAttachWindow = 20;

/// All hotpath/shard-root markers in a lexed file, in line order.
std::vector<Marker> parse_markers(const Lexed& lx);

/// True when a marker's (possibly qualified) name designates `fb`.
bool marker_name_matches(const std::string& name, const FuncBody& fb);

/// Resolve a marker to an index into `funcs`, or npos with `*error` set to
/// a human-readable stale-marker explanation.
std::size_t resolve_marker(const Marker& m, const std::vector<FuncBody>& funcs,
                           std::string* error);

/// One forbidden construct inside a hotpath-disciplined body.
struct HotpathViolation {
  std::size_t line;
  std::string what;  // "'throw'", "'new'", "std::function construction"
};

/// Scan one body for the P1 discipline (no throw/new/std::function). Shared
/// by P1 (marked bodies) and P2 (bodies reachable from marked bodies).
std::vector<HotpathViolation> hotpath_violations(const Lexed& lx, const FuncBody& fb);

void check_t1(const std::string& path, const Lexed& lx, std::vector<Finding>& out);
void check_p1(const std::string& path, const Lexed& lx, std::vector<Finding>& out);

}  // namespace srds::lint

// T1 (adversarial-input taint) and P1 (hot-path hygiene) passes.
//
// T1 — every byte a party acts on is adversary-controlled until it has
// passed a bounds-checked deserialization (the Reader contract in
// common/serial.hpp, untag_body, a deserialize()/validate() routine).
// Within the protocol directories (src/ba, src/consensus, src/srds,
// src/mpc) any function that reads `payload` *bytes* — indexing,
// .data()/.begin()/iteration, or mem* calls over the buffer — without a
// prior validation call in the same function body is flagged. Reading
// .size()/.empty() and handing the payload to a helper (whose own body T1
// checks when it is in scope) are not byte reads.
//
// P1 — functions marked `// srds-lint: hotpath` (the simulator delivery
// loop, SRDS aggregation) must not `throw`, use `new`, or construct a
// `std::function`: those allocate or unwind on the per-message path that
// the per-party communication accounting multiplies by n.
//
// Both passes run on the shared token-level function-body map below —
// a brace-matching heuristic, not an AST: a '{' opening after a ')' (with
// only declarator trailer tokens between) starts a function body unless
// the call-ish name is a control keyword or a lambda introducer. Lambda
// bodies are attributed to their enclosing function.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lex.hpp"
#include "lint.hpp"

namespace srds::lint {

struct FuncBody {
  std::string name;        // best-effort declarator name ("deliver")
  std::size_t open_line;   // line of the body '{'
  std::size_t open_tok;    // token index of '{'
  std::size_t close_tok;   // token index of the matching '}' (or last token)
  std::size_t close_line;  // line of that token
};

/// All top-level function bodies of a lexed file, in order.
std::vector<FuncBody> function_bodies(const Lexed& lx);

void check_t1(const std::string& path, const Lexed& lx, std::vector<Finding>& out);
void check_p1(const std::string& path, const Lexed& lx, std::vector<Finding>& out);

}  // namespace srds::lint

#include "locks.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace srds::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_mutex_type(const std::string& s) {
  static const std::set<std::string> k = {"mutex",        "recursive_mutex",
                                          "timed_mutex",  "recursive_timed_mutex",
                                          "shared_mutex", "shared_timed_mutex"};
  return k.count(s) != 0;
}

bool is_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool is_access_spec(const std::string& s) {
  return s == "public" || s == "private" || s == "protected";
}

bool is_atomic_type(const std::string& s) {
  return s == "atomic" || s.compare(0, 7, "atomic_") == 0;
}

/// Innermost class of a qualified name: "Outer::Inner::f" -> "Inner",
/// free function -> "".
std::string def_class(const FuncBody& fb) {
  const std::size_t sep = fb.qual.rfind("::");
  if (sep == std::string::npos) return "";
  const std::string pre = fb.qual.substr(0, sep);
  const std::size_t sep2 = pre.rfind("::");
  return sep2 == std::string::npos ? pre : pre.substr(sep2 + 2);
}

// ---------------------------------------------------------------------------
// Field / mutex declaration index.
// ---------------------------------------------------------------------------

struct FieldInfo {
  std::string cls;      // innermost declaring class
  std::string name;     // member name
  std::size_t file = 0; // index into CallGraph::files
  std::size_t line = 0; // declaration line (the name token's line)
  bool is_atomic = false;
  std::string guard;    // qualified mutex identity from guarded_by, "" if none
  std::string confined; // owner label from confined(...), "" if none
};

struct ClassIndex {
  /// Innermost class name -> mutex member names (merged across files: the
  /// class body lives in a header, the method bodies in a .cpp).
  std::map<std::string, std::set<std::string>> class_mutexes;
  std::set<std::string> global_mutexes;  // namespace-scope mutex declarations
  std::vector<FieldInfo> fields;         // non-mutex mutable members

  const FieldInfo* find(const std::string& cls, const std::string& name) const {
    for (const FieldInfo& f : fields) {
      if (f.cls == cls && f.name == name) return &f;
    }
    return nullptr;
  }
};

/// Member and namespace-scope declarations of one file. Same skeleton as
/// callgraph.cpp's collect_globals: function-body tokens are skipped, brace
/// scopes are classified by walking back from '{', and a statement is
/// evaluated at each ';'. Inside a class scope the statement is a member
/// declaration (field or mutex); at pure namespace scope a mutex-typed
/// declaration is a free mutex (lock identity for guards naming it).
void scan_file_decls(const Lexed& lx, const std::vector<FuncBody>& funcs,
                     std::size_t file_idx, ClassIndex& idx) {
  const std::vector<Tok>& toks = lx.toks;
  std::vector<char> in_body(toks.size(), 0);
  std::vector<char> body_open(toks.size(), 0);
  for (const FuncBody& fb : funcs) {
    for (std::size_t k = fb.open_tok; k <= fb.close_tok && k < toks.size(); ++k) {
      in_body[k] = 1;
    }
    if (fb.open_tok < toks.size()) body_open[fb.open_tok] = 1;
  }
  enum Kind { kNs, kClass, kOther };
  struct Scope {
    Kind kind;
    std::string name;  // class name for kClass
  };
  std::vector<Scope> scopes;
  std::vector<const Tok*> stmt;
  auto all_ns = [&] {
    for (const Scope& s : scopes) {
      if (s.kind != kNs) return false;
    }
    return true;
  };
  auto in_class = [&] { return !scopes.empty() && scopes.back().kind == kClass; };

  // Returns npos on "not a plain data member": method declarations, using/
  // typedef/static/friend/..., const members. On success *name_out points at
  // the member-name token.
  static const std::set<std::string> kSkip = {
      "using",     "typedef",  "friend",   "template", "operator",
      "static_assert", "enum", "namespace", "requires", "concept",
      "static",    "extern",   "virtual",  "explicit", "inline",
      "typename",  "const",    "constexpr", "class",   "struct", "union"};
  auto member_name = [&](bool* is_atomic, bool* is_mutex) -> const Tok* {
    if (stmt.size() < 2) return nullptr;
    for (const Tok* t : stmt) {
      if (t->kind == Tok::kIdent && kSkip.count(t->text)) return nullptr;
    }
    // Method declaration vs field: the first depth-0 '(' before any depth-0
    // '=' means a declarator parameter list.
    int depth = 0;
    std::size_t limit = stmt.size();  // position of the deciding '='
    bool decided = false;
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const std::string& x = stmt[k]->text;
      if (x == "<" || x == "[" || x == "(") {
        if (x == "(" && depth == 0) return nullptr;  // method / function ptr
        ++depth;
      } else if (x == ">" || x == "]" || x == ")") {
        if (depth > 0) --depth;
      } else if (x == "=" && depth == 0) {
        limit = k;
        decided = true;
        break;
      }
    }
    (void)decided;
    // Walk back over array extents to the member name.
    std::size_t k = limit;
    int bdepth = 0;
    while (k > 0) {
      const std::string& x = stmt[k - 1]->text;
      if (x == "]") { ++bdepth; --k; continue; }
      if (x == "[") { if (bdepth > 0) --bdepth; --k; continue; }
      if (bdepth > 0) { --k; continue; }
      break;
    }
    if (k == 0 || stmt[k - 1]->kind != Tok::kIdent) return nullptr;
    *is_atomic = false;
    *is_mutex = false;
    for (std::size_t j = 0; j + 1 < k; ++j) {
      if (stmt[j]->kind != Tok::kIdent) continue;
      if (is_atomic_type(stmt[j]->text)) *is_atomic = true;
      if (is_mutex_type(stmt[j]->text)) *is_mutex = true;
    }
    return stmt[k - 1];
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (in_body[i]) {
      if (body_open[i]) stmt.clear();  // `void f() {` left a dangling declarator
      continue;
    }
    if (t.text == "{") {
      // Classify the scope this brace opens by its head.
      std::size_t b = i;
      Scope sc{kOther, ""};
      bool clear = false;
      for (int steps = 0; b > 0 && steps < 64; ++steps) {
        const Tok& p = toks[b - 1];
        if (p.kind == Tok::kIdent) {
          if (p.text == "namespace") {
            sc.kind = kNs;
            clear = true;
            break;
          }
          if (p.text == "enum") {
            clear = true;  // enum body: not a field scope
            break;
          }
          if (p.text == "class" || p.text == "struct" || p.text == "union") {
            if (b >= 2 && toks[b - 2].text == "enum") {
              clear = true;  // `enum class K {`
              break;
            }
            sc.kind = kClass;
            if (b < toks.size() && toks[b].kind == Tok::kIdent) sc.name = toks[b].text;
            clear = true;
            break;
          }
          --b;
          continue;
        }
        if (p.kind == Tok::kNum || p.text == "::" || p.text == "<" || p.text == ">" ||
            p.text == ":" || p.text == "," || p.text == "&" || p.text == "*") {
          --b;
          continue;
        }
        break;
      }
      scopes.push_back(sc);
      if (clear) stmt.clear();
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) {
        if (scopes.back().kind != kOther) stmt.clear();
        scopes.pop_back();
      }
      continue;
    }
    const bool collecting = in_class() || all_ns();
    if (!collecting) continue;
    if (t.text == ":" && stmt.size() == 1 && stmt[0]->kind == Tok::kIdent &&
        is_access_spec(stmt[0]->text)) {
      stmt.clear();  // `public:` and friends
      continue;
    }
    if (t.text == ";") {
      bool is_atomic = false, is_mutex = false;
      const Tok* name = member_name(&is_atomic, &is_mutex);
      if (name) {
        if (in_class()) {
          const std::string& cls = scopes.back().name;
          if (!cls.empty()) {
            if (is_mutex) {
              idx.class_mutexes[cls].insert(name->text);
            } else {
              FieldInfo f;
              f.cls = cls;
              f.name = name->text;
              f.file = file_idx;
              f.line = name->line;
              f.is_atomic = is_atomic;
              idx.fields.push_back(std::move(f));
            }
          }
        } else if (is_mutex) {
          idx.global_mutexes.insert(name->text);
        }
      }
      stmt.clear();
      continue;
    }
    stmt.push_back(&t);
  }
}

// ---------------------------------------------------------------------------
// guarded_by / confined field markers.
// ---------------------------------------------------------------------------

struct FieldMarker {
  bool guarded = false;  // guarded_by(...) vs confined(...)
  std::string arg;       // mutex name / owner label; "" when malformed
  std::size_t line = 0;         // comment line
  std::size_t target_line = 0;  // resolved code line, 0 when none
  bool malformed = false;
};

/// All guarded_by/confined annotations of a file, bound to a code line the
/// same way suppressions bind: the comment's own line when it carries code
/// (trailing comment), else the next line with code.
std::vector<FieldMarker> parse_field_markers(const Lexed& lx) {
  std::vector<FieldMarker> out;
  for (const Comment& c : lx.comments) {
    std::size_t pos = c.text.find("srds-lint:");
    if (pos == std::string::npos) continue;
    pos += 10;
    while (pos < c.text.size() && (c.text[pos] == ' ' || c.text[pos] == '\t')) ++pos;
    FieldMarker fm;
    std::size_t kind_len = 0;
    if (c.text.compare(pos, 10, "guarded_by") == 0) {
      fm.guarded = true;
      kind_len = 10;
    } else if (c.text.compare(pos, 8, "confined") == 0) {
      fm.guarded = false;
      kind_len = 8;
    } else {
      continue;  // allow(...)/hotpath/shard-root — other machinery's job
    }
    fm.line = c.line;
    if (lx.code_lines.count(c.line)) {
      fm.target_line = c.line;
    } else {
      auto it = lx.code_lines.upper_bound(c.line);
      if (it != lx.code_lines.end()) fm.target_line = *it;
    }
    const std::size_t lp = pos + kind_len;
    if (lp >= c.text.size() || c.text[lp] != '(') {
      fm.malformed = true;
      out.push_back(std::move(fm));
      continue;
    }
    const std::size_t rp = c.text.find(')', lp + 1);
    if (rp == std::string::npos) {
      fm.malformed = true;
      out.push_back(std::move(fm));
      continue;
    }
    fm.arg = trim(c.text.substr(lp + 1, rp - lp - 1));
    if (fm.arg.empty()) fm.malformed = true;
    out.push_back(std::move(fm));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Guard scopes.
// ---------------------------------------------------------------------------

/// One lock_guard/unique_lock/scoped_lock/shared_lock declaration; the lock
/// is held from decl_tok to end_tok (the enclosing brace's close).
struct GuardScope {
  std::size_t decl_tok = 0;
  std::size_t end_tok = 0;
  std::size_t line = 0;
  std::vector<std::string> mutexes;  // qualified identities, in arg order
};

/// Qualified lock identity for a guard argument naming `name` inside a
/// member of `cls`: the declaring class's "Cls::name" when the class has a
/// mutex member of that name, else the raw name (free mutexes agree across
/// TUs by name).
std::string mutex_identity(const std::string& cls, const std::string& name,
                           const ClassIndex& idx) {
  if (!cls.empty()) {
    auto it = idx.class_mutexes.find(cls);
    if (it != idx.class_mutexes.end() && it->second.count(name)) {
      return cls + "::" + name;
    }
  }
  return name;
}

std::vector<GuardScope> find_guards(const Lexed& lx, const FuncBody& fb,
                                    const std::string& cls, const ClassIndex& idx) {
  const std::vector<Tok>& toks = lx.toks;
  // Brace-match map for the body.
  std::map<std::size_t, std::size_t> match;
  {
    std::vector<std::size_t> st;
    for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
      if (toks[i].text == "{") {
        st.push_back(i);
      } else if (toks[i].text == "}" && !st.empty()) {
        match[st.back()] = i;
        st.pop_back();
      }
    }
  }
  std::vector<GuardScope> out;
  std::vector<std::size_t> open;  // enclosing '{' indices, innermost last
  for (std::size_t i = fb.open_tok; i <= fb.close_tok && i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.text == "{") {
      open.push_back(i);
      continue;
    }
    if (t.text == "}") {
      if (!open.empty()) open.pop_back();
      continue;
    }
    if (t.kind != Tok::kIdent || !is_guard_type(t.text)) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {  // lock_guard<std::mutex>
      int d = 0;
      for (; j <= fb.close_tok && j < toks.size(); ++j) {
        if (toks[j].text == "<") ++d;
        else if (toks[j].text == ">" && --d == 0) { ++j; break; }
      }
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) continue;  // no var name
    if (j + 1 > fb.close_tok || j + 1 >= toks.size()) continue;
    const std::string opener = toks[j + 1].text;
    if (opener != "(" && opener != "{") continue;  // not `guard lk(mu);`
    const std::string closer = (opener == "(") ? ")" : "}";
    std::vector<std::vector<const Tok*>> args(1);
    int d = 0;
    std::size_t k = j + 1;
    for (; k <= fb.close_tok && k < toks.size(); ++k) {
      const std::string& x = toks[k].text;
      if (x == "(" || x == "[" || x == "{") {
        if (++d > 1) args.back().push_back(&toks[k]);
        continue;
      }
      if (x == ")" || x == "]" || x == "}") {
        if (--d == 0) break;
        args.back().push_back(&toks[k]);
        continue;
      }
      if (d == 1 && x == ",") {
        args.emplace_back();
        continue;
      }
      args.back().push_back(&toks[k]);
    }
    (void)closer;
    GuardScope g;
    g.decl_tok = i;
    g.line = t.line;
    g.end_tok = open.empty() ? fb.close_tok
                             : (match.count(open.back()) ? match[open.back()]
                                                         : fb.close_tok);
    bool deferred = false;
    for (const std::vector<const Tok*>& arg : args) {
      const Tok* last = nullptr;
      for (const Tok* a : arg) {
        if (a->kind != Tok::kIdent) continue;
        if (a->text == "defer_lock") {
          deferred = true;
          last = nullptr;
          break;
        }
        if (a->text == "std" || a->text == "this" || a->text == "adopt_lock" ||
            a->text == "try_to_lock") {
          continue;
        }
        last = a;
      }
      if (last) g.mutexes.push_back(mutex_identity(cls, last->text, idx));
    }
    // A defer_lock-constructed unique_lock is not held at declaration; the
    // later .lock() is invisible to a token scanner, so the guard is dropped
    // (under-approximation, documented in locks.hpp).
    if (!deferred && !g.mutexes.empty()) out.push_back(std::move(g));
    i = k;
  }
  return out;
}

// ---------------------------------------------------------------------------
// The shared world both entry points build.
// ---------------------------------------------------------------------------

struct LockWorld {
  ClassIndex idx;
  std::vector<std::vector<GuardScope>> guards;  // per def
  std::set<std::size_t> allowed;                // locks.toml [allow] defs
  std::vector<std::size_t> incoming;            // per def resolved-caller count
  std::size_t annotated_fields = 0;
};

void add(std::vector<Finding>& out, const std::string& file, std::size_t line,
         const char* rule, std::string msg) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(msg);
  out.push_back(std::move(f));
}

/// Build the declaration index, bind annotations (stale ones become findings
/// when `out` is given), collect guard scopes and incoming-edge counts.
LockWorld build_world(const CallGraph& cg, const LocksManifest* manifest,
                      const std::string& manifest_path, std::vector<Finding>* out) {
  LockWorld w;
  // Per-file function lists (cg.defs is in (file, body) order).
  std::vector<std::vector<FuncBody>> file_funcs(cg.files.size());
  {
    std::size_t di = 0;
    for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
      while (di < cg.defs.size() && cg.defs[di].file == fi) {
        file_funcs[fi].push_back(cg.defs[di].body);
        ++di;
      }
    }
  }
  for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
    scan_file_decls(cg.files[fi].lx, file_funcs[fi], fi, w.idx);
  }
  // Bind guarded_by/confined annotations to field declarations.
  for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
    const FileCtx& fc = cg.files[fi];
    for (const FieldMarker& fm : parse_field_markers(fc.lx)) {
      const char* kind = fm.guarded ? "guarded_by" : "confined";
      const char* rule = fm.guarded ? "C2" : "C3";
      if (fm.malformed) {
        if (out) {
          add(*out, fc.path, fm.line, rule,
              std::string("srds-lint: ") + kind +
                  " marker is malformed: expected `" + kind +
                  "(<name>)` with a non-empty name");
        }
        continue;
      }
      FieldInfo* bound = nullptr;
      for (FieldInfo& f : w.idx.fields) {
        if (f.file == fi && f.line == fm.target_line) {
          bound = &f;
          break;
        }
      }
      if (!bound) {
        if (out) {
          add(*out, fc.path, fm.line, rule,
              std::string("srds-lint: ") + kind + "(" + fm.arg +
                  ") marker binds to no field declaration; was the field deleted, "
                  "renamed, or moved? Stale markers are never silently dropped");
        }
        continue;
      }
      if (fm.guarded) {
        const bool in_class =
            w.idx.class_mutexes.count(bound->cls) != 0 &&
            w.idx.class_mutexes.at(bound->cls).count(fm.arg) != 0;
        if (!in_class && !w.idx.global_mutexes.count(fm.arg)) {
          if (out) {
            add(*out, fc.path, fm.line, "C2",
                "srds-lint: guarded_by(" + fm.arg + ") on field '" + bound->cls +
                    "::" + bound->name + "' names no mutex member of '" + bound->cls +
                    "' and no file-scope mutex; was the mutex deleted or renamed?");
          }
          continue;
        }
        bound->guard = in_class ? bound->cls + "::" + fm.arg : fm.arg;
      } else {
        bound->confined = fm.arg;
      }
      ++w.annotated_fields;
    }
  }
  // Guard scopes per definition.
  w.guards.resize(cg.defs.size());
  for (std::size_t d = 0; d < cg.defs.size(); ++d) {
    const FuncDef& def = cg.defs[d];
    w.guards[d] =
        find_guards(cg.files[def.file].lx, def.body, def_class(def.body), w.idx);
  }
  // [allow] entries; stale ones are findings (same contract as shard_roots).
  if (manifest) {
    for (const auto& [name, just] : manifest->allows) {
      (void)just;
      bool any = false;
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (marker_name_matches(name, cg.defs[d].body)) {
          w.allowed.insert(d);
          any = true;
        }
      }
      if (!any && out) {
        add(*out, manifest_path, 0, "C2",
            "locks manifest [allow] entry '" + name +
                "' matches no function definition in the scanned set; remove the "
                "stale entry");
      }
    }
  }
  // Incoming resolved-call edges: zero-incoming definitions are the public
  // entry points the unheld-access traversal starts from.
  w.incoming.assign(cg.defs.size(), 0);
  for (const FuncDef& def : cg.defs) {
    for (const CallSite& cs : def.calls) {
      for (std::size_t cal : cg.resolve(def, cs)) ++w.incoming[cal];
    }
  }
  return w;
}

bool tok_in_guard(const GuardScope& g, std::size_t tok) {
  return tok > g.decl_tok && tok < g.end_tok;
}

bool held_at(const std::vector<GuardScope>& guards, const std::string& mu,
             std::size_t tok) {
  for (const GuardScope& g : guards) {
    if (!tok_in_guard(g, tok)) continue;
    for (const std::string& m : g.mutexes) {
      if (m == mu) return true;
    }
  }
  return false;
}

/// True when toks[i] (an identifier) reads as a member access of the current
/// object: a bare use or `this->name`. Accesses through another object are
/// skipped — a token scanner cannot type the receiver — and `name(` is a
/// call, `X::name` a qualified non-instance use.
bool own_field_access(const std::vector<Tok>& toks, std::size_t i) {
  if (i > 0) {
    const std::string& p = toks[i - 1].text;
    if (p == ".") return false;
    if (p == "->") return i >= 2 && toks[i - 2].text == "this";
    if (p == "::") return false;
  }
  if (i + 1 < toks.size() && toks[i + 1].text == "(") return false;
  return true;
}

/// Constructors/destructors initialize members before the object is shared;
/// the lock-discipline and confinement scans skip them.
bool is_ctor_or_dtor(const FuncBody& fb) {
  const std::string cls = def_class(fb);
  return (!cls.empty() && fb.name == cls) || (!fb.name.empty() && fb.name[0] == '~');
}

// ---------------------------------------------------------------------------
// Lock-order edges + double-lock (one traversal feeds both).
// ---------------------------------------------------------------------------

struct EdgeProv {
  std::string file;
  std::size_t line = 0;  // acquisition site of the second mutex
  std::string path;      // call path from the holder of the first
};

using EdgeMap = std::map<std::pair<std::string, std::string>, EdgeProv>;

void lock_order_edges(const CallGraph& cg, const LockWorld& w, EdgeMap& edges,
                      std::vector<Finding>* out) {
  std::set<std::pair<std::string, std::size_t>> dbl_seen;  // (file, line)
  auto dbl = [&](const std::string& file, std::size_t line, const std::string& mu,
                 const std::string& held_where, const std::string& path) {
    if (!out || !dbl_seen.insert({file, line}).second) return;
    add(*out, file, line, "C2",
        "mutex '" + mu + "' acquired while already held (first acquired in '" +
            held_where + "'" + (path.empty() ? "" : ", held along " + path) +
            "); std::mutex is not recursive — this deadlocks");
  };
  for (std::size_t d = 0; d < cg.defs.size(); ++d) {
    if (w.allowed.count(d)) continue;
    const FuncDef& def = cg.defs[d];
    const std::string& dfile = cg.files[def.file].path;
    for (const GuardScope& g : w.guards[d]) {
      for (const std::string& mu : g.mutexes) {
        // Nested guards in the same body. A multi-mutex scoped_lock acquires
        // its own set atomically — no self-edges from one guard.
        for (const GuardScope& g2 : w.guards[d]) {
          if (g2.decl_tok <= g.decl_tok || !tok_in_guard(g, g2.decl_tok)) continue;
          for (const std::string& mu2 : g2.mutexes) {
            if (mu2 == mu) {
              dbl(dfile, g2.line, mu, def.body.qual, "");
            } else {
              edges.emplace(std::make_pair(mu, mu2),
                            EdgeProv{dfile, g2.line, def.body.qual});
            }
          }
        }
        // Guards in functions reachable from call sites inside this scope —
        // the mutex is held across the whole callee.
        std::map<std::size_t, std::size_t> parent;  // def -> caller (kNpos at seeds)
        std::deque<std::size_t> q;
        for (const CallSite& cs : def.calls) {
          if (!tok_in_guard(g, cs.tok)) continue;
          for (std::size_t cal : cg.resolve(def, cs)) {
            if (w.allowed.count(cal) || parent.count(cal)) continue;
            parent[cal] = kNpos;
            q.push_back(cal);
          }
        }
        auto held_path = [&](std::size_t r) {
          std::vector<std::string> chain;
          for (std::size_t i = r; i != kNpos; i = parent.at(i)) {
            chain.push_back(cg.defs[i].body.qual);
            if (chain.size() > 24) { chain.push_back("..."); break; }
          }
          chain.push_back(def.body.qual);
          std::reverse(chain.begin(), chain.end());
          std::string p;
          for (std::size_t i = 0; i < chain.size(); ++i) {
            if (i) p += " -> ";
            p += chain[i];
          }
          return p;
        };
        while (!q.empty()) {
          const std::size_t r = q.front();
          q.pop_front();
          const FuncDef& rdef = cg.defs[r];
          const std::string& rfile = cg.files[rdef.file].path;
          for (const GuardScope& gr : w.guards[r]) {
            for (const std::string& mu2 : gr.mutexes) {
              if (mu2 == mu) {
                dbl(rfile, gr.line, mu, def.body.qual, held_path(r));
              } else {
                edges.emplace(std::make_pair(mu, mu2),
                              EdgeProv{rfile, gr.line, held_path(r)});
              }
            }
          }
          for (const CallSite& cs : rdef.calls) {
            for (std::size_t cal : cg.resolve(rdef, cs)) {
              if (w.allowed.count(cal) || parent.count(cal)) continue;
              parent[cal] = r;
              q.push_back(cal);
            }
          }
        }
      }
    }
  }
}

/// Shortest cycle through each edge, deduplicated by canonical rotation.
/// Each cycle is its node list (first node repeated implicitly).
std::vector<std::vector<std::string>> find_cycles(const EdgeMap& edges) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, prov] : edges) {
    (void)prov;
    adj[e.first].push_back(e.second);
  }
  std::set<std::string> seen;
  std::vector<std::vector<std::string>> out;
  for (const auto& [e, prov] : edges) {
    (void)prov;
    const std::string &a = e.first, &b = e.second;
    // BFS b -> a.
    std::map<std::string, std::string> par;
    std::deque<std::string> q;
    par[b] = "";
    q.push_back(b);
    bool found = (b == a);
    while (!q.empty() && !found) {
      const std::string u = q.front();
      q.pop_front();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const std::string& v : it->second) {
        if (par.count(v)) continue;
        par[v] = u;
        if (v == a) { found = true; break; }
        q.push_back(v);
      }
    }
    if (!found) continue;
    std::vector<std::string> nodes;  // a -> b -> ... (back to a implied)
    if (b == a) {
      nodes = {a};
    } else {
      std::vector<std::string> back;  // a, ..., b
      for (std::string v = a; !v.empty(); v = par.at(v)) back.push_back(v);
      std::reverse(back.begin(), back.end());  // b, ..., a — wait: built a<-...
      // `back` was collected a -> parent chain toward b; after reverse it is
      // b, ..., a. The cycle is a -> (b, ..., a): drop the trailing a.
      back.pop_back();
      nodes.push_back(a);
      nodes.insert(nodes.end(), back.begin(), back.end());
    }
    // Canonical rotation: smallest node first.
    const std::size_t mi = static_cast<std::size_t>(
        std::min_element(nodes.begin(), nodes.end()) - nodes.begin());
    std::rotate(nodes.begin(), nodes.begin() + mi, nodes.end());
    std::string key;
    for (const std::string& n : nodes) key += n + "\x1f";
    if (seen.insert(key).second) out.push_back(std::move(nodes));
  }
  return out;
}

// ---------------------------------------------------------------------------
// C3 helpers.
// ---------------------------------------------------------------------------

bool is_rmw_op(const std::string& s) {
  return s == "+" || s == "-" || s == "*" || s == "/" || s == "%" || s == "&" ||
         s == "|" || s == "^";
}

struct RmwSite {
  std::size_t line = 0;
  std::string what;       // "x++", "x += ...", "x = x op ..."
  bool load_store = false;  // the `x = x op ...` two-op form
};

/// Non-atomic RMW shapes on `name` inside one body. The lexer emits
/// single-character punctuation (`+=` is '+','='; `++` is '+','+'), so the
/// shapes are token pairs.
std::vector<RmwSite> rmw_sites(const std::vector<Tok>& toks, const FuncBody& fb,
                               const std::string& name) {
  std::vector<RmwSite> out;
  for (std::size_t i = fb.open_tok + 1; i < fb.close_tok && i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != name) continue;
    if (!own_field_access(toks, i)) continue;
    const std::string n1 = (i + 1 < toks.size()) ? toks[i + 1].text : "";
    const std::string n2 = (i + 2 < toks.size()) ? toks[i + 2].text : "";
    // x++ / x--
    if ((n1 == "+" && n2 == "+") || (n1 == "-" && n2 == "-")) {
      out.push_back({toks[i].line, "'" + name + n1 + n2 + "'", false});
      continue;
    }
    // ++x / --x
    if (i >= 2 && toks[i - 1].text == toks[i - 2].text &&
        (toks[i - 1].text == "+" || toks[i - 1].text == "-")) {
      out.push_back(
          {toks[i].line, "'" + toks[i - 1].text + toks[i - 2].text + name + "'", false});
      continue;
    }
    // x += e (any compound op)
    if (is_rmw_op(n1) && n2 == "=") {
      out.push_back({toks[i].line, "'" + name + " " + n1 + "= ...'", false});
      continue;
    }
    // x = x op ... — a separate load and store even on std::atomic.
    if (n1 == "=" && n2 != "=") {
      for (std::size_t j = i + 2; j < fb.close_tok && j < toks.size(); ++j) {
        if (toks[j].text == ";") break;
        if (toks[j].kind == Tok::kIdent && toks[j].text == name &&
            own_field_access(toks, j)) {
          out.push_back({toks[i].line, "'" + name + " = " + name + " ...'", true});
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// locks.toml.
// ---------------------------------------------------------------------------

bool parse_locks_manifest(const std::string& text, LocksManifest& out,
                          std::string& error) {
  out = LocksManifest{};
  std::string section;
  bool in_array = false;
  std::size_t lineno = 0;
  std::size_t start = 0;
  auto push_field = [&](const std::string& s, std::string* err) {
    if (s.find("::") == std::string::npos) {
      *err = "[shared] field '" + s + "' must be qualified as 'Class::field'";
      return false;
    }
    out.shared_fields.push_back(s);
    return true;
  };
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string line = text.substr(start, end == std::string::npos ? std::string::npos
                                                                   : end - start);
    start = (end == std::string::npos) ? text.size() + 1 : end + 1;
    ++lineno;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (line[i] == '#' && !quoted) {
        line = line.substr(0, i);
        break;
      }
    }
    line = trim(line);
    if (line.empty()) continue;
    auto fail = [&](const std::string& why) {
      error = "line " + std::to_string(lineno) + ": " + why;
      return false;
    };
    if (in_array) {
      for (std::size_t i = 0; i < line.size();) {
        if (line[i] == '"') {
          std::size_t close = line.find('"', i + 1);
          if (close == std::string::npos) return fail("unterminated string");
          std::string err;
          if (!push_field(line.substr(i + 1, close - i - 1), &err)) return fail(err);
          i = close + 1;
        } else if (line[i] == ']') {
          in_array = false;
          break;
        } else if (line[i] == ',' || line[i] == ' ' || line[i] == '\t') {
          ++i;
        } else {
          return fail("unexpected character in fields array");
        }
      }
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') return fail("malformed section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "shared" && section != "allow-relaxed" && section != "allow") {
        return fail("unknown section '" + section +
                    "' (expected [shared], [allow-relaxed] or [allow])");
      }
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected `key = value`");
    std::string key = trim(line.substr(0, eq));
    std::string val = trim(line.substr(eq + 1));
    if (key.size() >= 2 && key.front() == '"' && key.back() == '"') {
      key = key.substr(1, key.size() - 2);
    }
    if (section == "shared") {
      if (key != "fields") return fail("unknown [shared] key '" + key + "'");
      if (val.empty() || val.front() != '[') return fail("fields must be an array");
      in_array = true;
      for (std::size_t i = 1; i < val.size();) {
        if (val[i] == '"') {
          std::size_t close = val.find('"', i + 1);
          if (close == std::string::npos) return fail("unterminated string");
          std::string err;
          if (!push_field(val.substr(i + 1, close - i - 1), &err)) return fail(err);
          i = close + 1;
        } else if (val[i] == ']') {
          in_array = false;
          break;
        } else if (val[i] == ',' || val[i] == ' ' || val[i] == '\t') {
          ++i;
        } else {
          return fail("unexpected character in fields array");
        }
      }
    } else if (section == "allow-relaxed" || section == "allow") {
      if (val.size() < 2 || val.front() != '"' || val.back() != '"') {
        return fail(std::string("[") + section + "] entry '" + key +
                    "' needs a quoted justification");
      }
      std::string just = trim(val.substr(1, val.size() - 2));
      if (just.empty()) {
        return fail(std::string("[") + section + "] entry '" + key +
                    "' needs a non-empty justification");
      }
      if (section == "allow-relaxed") {
        out.relaxed_allows.emplace_back(key, just);
      } else {
        out.allows.emplace_back(key, just);
      }
    } else {
      return fail("entry outside any section");
    }
  }
  if (in_array) {
    error = "unterminated fields array";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The combined C2 + C3 pass.
// ---------------------------------------------------------------------------

std::vector<Finding> check_locks(const CallGraph& cg, const LocksManifest* manifest,
                                 const std::string& manifest_path,
                                 const ShardManifest* shard_manifest,
                                 LockStats* stats) {
  std::vector<Finding> out;
  LockWorld w = build_world(cg, manifest, manifest_path, &out);

  // --- C2: unheld access, per annotated mutex. A definition is
  // "unheld-enterable" for mutex M when a zero-incoming public entry point
  // reaches it through call sites that are not inside a scope holding M.
  std::map<std::string, std::vector<const FieldInfo*>> by_mutex;
  for (const FieldInfo& f : w.idx.fields) {
    if (!f.guard.empty()) by_mutex[f.guard].push_back(&f);
  }
  for (const auto& [mu, fields] : by_mutex) {
    std::vector<char> vis(cg.defs.size(), 0);
    std::vector<std::size_t> parent(cg.defs.size(), kNpos);
    std::deque<std::size_t> q;
    for (std::size_t d = 0; d < cg.defs.size(); ++d) {
      if (w.incoming[d] == 0 && !w.allowed.count(d)) {
        vis[d] = 1;
        q.push_back(d);
      }
    }
    while (!q.empty()) {
      const std::size_t d = q.front();
      q.pop_front();
      for (const CallSite& cs : cg.defs[d].calls) {
        if (held_at(w.guards[d], mu, cs.tok)) continue;
        for (std::size_t cal : cg.resolve(cg.defs[d], cs)) {
          if (w.allowed.count(cal) || vis[cal]) continue;
          vis[cal] = 1;
          parent[cal] = d;
          q.push_back(cal);
        }
      }
    }
    auto unlocked_path = [&](std::size_t d) {
      std::vector<std::string> chain;
      for (std::size_t i = d; i != kNpos; i = parent[i]) {
        chain.push_back(cg.defs[i].body.qual);
        if (chain.size() > 24) { chain.push_back("..."); break; }
      }
      std::reverse(chain.begin(), chain.end());
      std::string p;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (i) p += " -> ";
        p += chain[i];
      }
      return p;
    };
    for (std::size_t d = 0; d < cg.defs.size(); ++d) {
      if (!vis[d] || w.allowed.count(d)) continue;
      const FuncDef& def = cg.defs[d];
      if (is_ctor_or_dtor(def.body)) continue;
      const std::string cls = def_class(def.body);
      const std::vector<Tok>& toks = cg.files[def.file].lx.toks;
      for (const FieldInfo* f : fields) {
        if (f->cls != cls) continue;
        for (std::size_t i = def.body.open_tok + 1;
             i < def.body.close_tok && i < toks.size(); ++i) {
          if (toks[i].kind != Tok::kIdent || toks[i].text != f->name) continue;
          if (!own_field_access(toks, i)) continue;
          if (held_at(w.guards[d], mu, i)) continue;
          add(out, cg.files[def.file].path, toks[i].line, "C2",
              "field '" + f->cls + "::" + f->name + "' (guarded_by '" + mu +
                  "') accessed without the lock held in '" + def.body.qual +
                  "'; reachable unlocked via " + unlocked_path(d) +
                  " — take the lock or prove the caller holds it");
          break;  // one finding per (definition, field)
        }
      }
    }
  }

  // --- C2: double-lock + the lock-order graph (one traversal feeds both).
  EdgeMap edges;
  lock_order_edges(cg, w, edges, &out);
  const std::vector<std::vector<std::string>> cycles = find_cycles(edges);
  for (const std::vector<std::string>& nodes : cycles) {
    std::string msg = "lock-order cycle: ";
    for (const std::string& n : nodes) msg += n + " -> ";
    msg += nodes.front();
    std::string anchor_file = manifest_path;
    std::size_t anchor_line = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::string& u = nodes[i];
      const std::string& v = nodes[(i + 1) % nodes.size()];
      auto it = edges.find({u, v});
      if (it == edges.end()) continue;
      msg += "; '" + v + "' acquired under '" + u + "' at " + it->second.file + ":" +
             std::to_string(it->second.line) + " (call path: " + it->second.path + ")";
      if (i == 0) {
        anchor_file = it->second.file;
        anchor_line = it->second.line;
      }
    }
    msg += " — acquire these mutexes in one global order or merge the critical sections";
    add(out, anchor_file, anchor_line, "C2", msg);
  }

  // --- C3: [shared] manifest fields.
  if (manifest) {
    for (const std::string& entry : manifest->shared_fields) {
      const std::size_t sep = entry.rfind("::");
      const std::string cls = entry.substr(0, sep);
      const std::string fname = entry.substr(sep + 2);
      const FieldInfo* f = w.idx.find(cls, fname);
      if (!f) {
        add(out, manifest_path, 0, "C3",
            "locks manifest [shared] field '" + entry +
                "' matches no member declaration in the scanned set; remove the "
                "stale entry");
        continue;
      }
      if (!f->guard.empty()) continue;  // C2 owns guarded fields
      std::vector<std::pair<const FuncDef*, RmwSite>> sites;
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (w.allowed.count(d)) continue;
        const FuncDef& def = cg.defs[d];
        if (def_class(def.body) != cls || is_ctor_or_dtor(def.body)) continue;
        for (const RmwSite& s : rmw_sites(cg.files[def.file].lx.toks, def.body, fname)) {
          if (f->is_atomic && !s.load_store) continue;  // atomic ++/+= is one RMW
          sites.emplace_back(&def, s);
        }
      }
      for (const auto& [def, s] : sites) {
        add(out, cg.files[def->file].path, s.line, "C3",
            s.load_store
                ? "load-store update " + s.what + " on " +
                      std::string(f->is_atomic ? "atomic " : "") + "[shared] field '" +
                      entry + "' in '" + def->body.qual +
                      "' is two operations, not one RMW — concurrent updates are "
                      "lost; use fetch_add/compare_exchange" +
                      std::string(f->is_atomic ? "" : " on an atomic, or take a lock")
                : "non-atomic RMW " + s.what + " on [shared] field '" + entry +
                      "' in '" + def->body.qual +
                      "'; make the field std::atomic (fetch_add) or guard it with a "
                      "mutex and a guarded_by annotation");
      }
      if (sites.empty() && !f->is_atomic && f->confined.empty()) {
        add(out, cg.files[f->file].path, f->line, "C3",
            "[shared] field '" + entry +
                "' is neither std::atomic nor guarded_by-annotated; cross-thread "
                "state needs one of the two (or a confined(owner) claim)");
      }
    }
  }

  // --- C3: memory_order_relaxed outside the justified [allow-relaxed] list.
  std::vector<char> relaxed_used(manifest ? manifest->relaxed_allows.size() : 0, 0);
  std::size_t relaxed_matched = 0;
  for (std::size_t fi = 0; fi < cg.files.size(); ++fi) {
    const FileCtx& fc = cg.files[fi];
    const std::vector<Tok>& toks = fc.lx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || toks[i].text != "memory_order_relaxed") {
        continue;
      }
      const FuncDef* def = nullptr;
      for (std::size_t d = 0; d < cg.defs.size(); ++d) {
        if (cg.defs[d].file != fi) continue;
        if (i >= cg.defs[d].body.open_tok && i <= cg.defs[d].body.close_tok) {
          def = &cg.defs[d];
          break;
        }
      }
      bool matched = false;
      if (manifest && def) {
        for (std::size_t a = 0; a < manifest->relaxed_allows.size(); ++a) {
          const std::string& name = manifest->relaxed_allows[a].first;
          bool hit = false;
          if (name.size() > 3 && name.compare(name.size() - 3, 3, "::*") == 0) {
            hit = def_class(def->body) == name.substr(0, name.size() - 3);
          } else {
            hit = marker_name_matches(name, def->body);
          }
          if (hit) {
            matched = true;
            relaxed_used[a] = 1;
            break;
          }
        }
      }
      if (matched) {
        ++relaxed_matched;
      } else {
        add(out, fc.path, toks[i].line, "C3",
            "memory_order_relaxed in '" +
                (def ? def->body.qual : std::string("(no enclosing function)")) +
                "' is not covered by a locks.toml [allow-relaxed] entry; relaxed "
                "ordering is only for statistics nothing synchronizes against — "
                "justify it in the manifest or use the default ordering");
      }
    }
  }
  if (manifest) {
    for (std::size_t a = 0; a < manifest->relaxed_allows.size(); ++a) {
      if (relaxed_used[a]) continue;
      add(out, manifest_path, 0, "C3",
          "locks manifest [allow-relaxed] entry '" + manifest->relaxed_allows[a].first +
              "' matches no memory_order_relaxed site in the scanned set; remove "
              "the stale entry");
    }
  }

  // --- C3: confined state crossing into the shard-reachable surface.
  {
    std::set<std::size_t> roots, shard_allowed;
    shard_roots_and_allows(cg, shard_manifest, roots, shard_allowed);
    // locks.toml [allow] entries stop this traversal too: an allowed def is
    // neither scanned nor walked through (the justification covers its whole
    // closure, exactly like a shard-manifest allow).
    shard_allowed.insert(w.allowed.begin(), w.allowed.end());
    const Reach r =
        reach_from(cg, {roots.begin(), roots.end()}, shard_allowed);
    for (std::size_t d = 0; d < cg.defs.size(); ++d) {
      if (!r.vis[d] || w.allowed.count(d)) continue;
      const FuncDef& def = cg.defs[d];
      if (is_ctor_or_dtor(def.body)) continue;
      const std::string cls = def_class(def.body);
      if (cls.empty()) continue;
      const std::vector<Tok>& toks = cg.files[def.file].lx.toks;
      for (const FieldInfo& f : w.idx.fields) {
        if (f.confined.empty() || f.cls != cls) continue;
        for (std::size_t i = def.body.open_tok + 1;
             i < def.body.close_tok && i < toks.size(); ++i) {
          if (toks[i].kind != Tok::kIdent || toks[i].text != f.name) continue;
          if (!own_field_access(toks, i)) continue;
          add(out, cg.files[def.file].path, toks[i].line, "C3",
              "field '" + f.cls + "::" + f.name + "' is confined to '" + f.confined +
                  "' but accessed in shard-reachable '" + def.body.qual +
                  "' (call path: " + call_path(cg, r, d) +
                  "); single-thread state crossing into the sharded surface needs "
                  "atomics or a mutex first");
          break;  // one finding per (definition, field)
        }
      }
    }
  }

  if (stats) {
    stats->annotated_fields = w.annotated_fields;
    stats->lock_edges = edges.size();
    stats->order_cycles = cycles.size();
    stats->relaxed_allows = relaxed_matched;
  }
  return out;
}

std::string lock_order_dot(const CallGraph& cg, const LocksManifest* manifest) {
  LockWorld w = build_world(cg, manifest, "locks.toml", nullptr);
  EdgeMap edges;
  lock_order_edges(cg, w, edges, nullptr);
  // An edge a->b lies on a cycle iff b reaches a.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, prov] : edges) {
    (void)prov;
    adj[e.first].push_back(e.second);
  }
  auto reaches = [&](const std::string& from, const std::string& to) {
    std::set<std::string> vis{from};
    std::deque<std::string> q{from};
    while (!q.empty()) {
      const std::string u = q.front();
      q.pop_front();
      if (u == to) return true;
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const std::string& v : it->second) {
        if (vis.insert(v).second) q.push_back(v);
      }
    }
    return false;
  };
  std::map<std::string, std::size_t> node_id;
  for (const auto& [e, prov] : edges) {
    (void)prov;
    node_id.emplace(e.first, node_id.size());
    node_id.emplace(e.second, node_id.size());
  }
  std::string dot =
      "digraph srds_lockorder {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (const auto& [name, id] : node_id) {
    dot += "  m" + std::to_string(id) + " [label=\"" + name + "\"];\n";
  }
  for (const auto& [e, prov] : edges) {
    dot += "  m" + std::to_string(node_id[e.first]) + " -> m" +
           std::to_string(node_id[e.second]) + " [label=\"" + prov.file + ":" +
           std::to_string(prov.line) + "\"";
    if (reaches(e.second, e.first)) dot += ", color=red";
    dot += "];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace srds::lint

// bench-diff CLI — the ratcheting bench-regression gate.
//
// Usage:
//   bench-diff [options] <baseline> <fresh>
//     <baseline>, <fresh>   two BENCH_*.json files, or two directories of
//                           them (the checked-in BENCH_BASELINE/ dir vs a
//                           fresh --json-out run); artifacts pair by file
//                           name in directory mode
//     --threshold PCT       relative change that counts as a regression
//                           (default 10, i.e. 10%)
//     --wall-threshold PCT  ALSO gate wall-clock medians (wall.ns_per_op)
//                           and allocs_per_op from schema-3 artifacts. A
//                           wall median regresses only when it moves beyond
//                           both this threshold and 3x the larger measured
//                           spread of the two runs (noise-aware ratchet).
//                           Off by default: wall clocks are volatile.
//     --json-out FILE       write the machine-readable diff report (parent
//                           directories are created as needed)
//     --write-baseline      refresh the baseline from the fresh run instead
//                           of gating: copies every fresh artifact over the
//                           baseline (volatile fields stripped) and, in
//                           directory mode, removes baseline artifacts with
//                           no fresh counterpart
//     --quiet               summary line only
//
// Gate semantics (mirrors the srds-lint LINT_BASELINE ratchet): a metric
// worse than baseline beyond the threshold OR a baseline entry the fresh
// run no longer produces fails; improvements and new metrics are reported
// as ratchet candidates. Exit 0 when the gate passes, 1 when it fails, 2 on
// usage/IO/parse errors.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "diff.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace fs = std::filesystem;
using namespace srds::benchdiff;

namespace {

struct Options {
  std::string baseline;
  std::string fresh;
  double threshold = 0.10;
  bool wall_mode = false;
  double wall_threshold = 0.25;
  std::string json_out;
  bool write_baseline = false;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold PCT] [--wall-threshold PCT] [--json-out FILE] "
               "[--write-baseline] [--quiet] <baseline> <fresh>\n"
               "  <baseline>/<fresh>: two BENCH_*.json files or two directories\n",
               argv0);
  return 2;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Load + parse one artifact; prints its own error. Returns false on failure.
bool load_doc(const fs::path& path, srds::obs::Json& doc) {
  std::string text, err;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "bench-diff: cannot read %s\n", path.c_str());
    return false;
  }
  if (!srds::obs::Json::parse(text, doc, &err)) {
    std::fprintf(stderr, "bench-diff: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

/// BENCH_*.json files directly inside `dir`, keyed by file name.
std::map<std::string, fs::path> artifacts_in(const fs::path& dir) {
  std::map<std::string, fs::path> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      out.emplace(name, entry.path());
    }
  }
  return out;
}

void print_delta(const Delta& d) {
  std::string where = d.sample.bench;
  if (!d.sample.label.empty()) where += " / " + d.sample.label;
  char xbuf[64];
  std::snprintf(xbuf, sizeof xbuf, "%g", d.sample.x);
  switch (d.kind) {
    case Delta::Kind::kRegression:
    case Delta::Kind::kImprovement: {
      char rel[32];
      if (d.base == 0) {
        std::snprintf(rel, sizeof rel, "from zero");
      } else {
        std::snprintf(rel, sizeof rel, "%+.1f%%", 100.0 * d.rel);
      }
      std::printf("  %-14s %s @ x=%s %s: %g -> %g (%s)\n", kind_name(d.kind),
                  where.c_str(), xbuf, d.sample.metric.c_str(), d.base,
                  d.sample.value, rel);
      break;
    }
    case Delta::Kind::kStale:
      std::printf("  %-14s %s @ x=%s %s: baseline has %g, fresh run has no such "
                  "series (refresh with --write-baseline)\n",
                  kind_name(d.kind), where.c_str(), xbuf, d.sample.metric.c_str(),
                  d.base);
      break;
    case Delta::Kind::kNew:
      std::printf("  %-14s %s @ x=%s %s = %g (not in baseline)\n", kind_name(d.kind),
                  where.c_str(), xbuf, d.sample.metric.c_str(), d.sample.value);
      break;
    case Delta::Kind::kOk:
      break;
  }
}

/// --write-baseline: copy fresh artifacts (volatile fields stripped) over
/// the baseline; in directory mode also drop stale baseline artifacts.
int refresh_baseline(const Options& opt, bool dir_mode) {
  if (dir_mode) {
    std::error_code ec;
    fs::create_directories(opt.baseline, ec);
    const auto fresh_files = artifacts_in(opt.fresh);
    for (const auto& [name, path] : fresh_files) {
      srds::obs::Json doc;
      if (!load_doc(path, doc)) return 2;
      const fs::path dst = fs::path(opt.baseline) / name;
      if (!srds::obs::write_text_file(dst.string(),
                                      strip_volatile(doc).dump(2) + "\n")) {
        std::fprintf(stderr, "bench-diff: cannot write %s\n", dst.c_str());
        return 2;
      }
      if (!opt.quiet) std::printf("bench-diff: baseline %s refreshed\n", dst.c_str());
    }
    for (const auto& [name, path] : artifacts_in(opt.baseline)) {
      if (fresh_files.count(name)) continue;
      fs::remove(path, ec);
      if (!opt.quiet) {
        std::printf("bench-diff: baseline %s removed (no fresh counterpart)\n",
                    path.c_str());
      }
    }
    return 0;
  }
  srds::obs::Json doc;
  if (!load_doc(opt.fresh, doc)) return 2;
  const fs::path dst(opt.baseline);
  std::error_code ec;
  if (dst.has_parent_path()) fs::create_directories(dst.parent_path(), ec);
  if (!srds::obs::write_text_file(opt.baseline, strip_volatile(doc).dump(2) + "\n")) {
    std::fprintf(stderr, "bench-diff: cannot write %s\n", opt.baseline.c_str());
    return 2;
  }
  if (!opt.quiet) std::printf("bench-diff: baseline %s refreshed\n", opt.baseline.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench-diff: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--threshold") == 0) {
      opt.threshold = std::atof(value("--threshold")) / 100.0;
      if (opt.threshold < 0) return usage(argv[0]);
    } else if (std::strcmp(a, "--wall-threshold") == 0) {
      opt.wall_mode = true;
      opt.wall_threshold = std::atof(value("--wall-threshold")) / 100.0;
      if (opt.wall_threshold < 0) return usage(argv[0]);
    } else if (std::strcmp(a, "--json-out") == 0) {
      opt.json_out = value("--json-out");
    } else if (std::strcmp(a, "--write-baseline") == 0) {
      opt.write_baseline = true;
    } else if (std::strcmp(a, "--quiet") == 0 || std::strcmp(a, "-q") == 0) {
      opt.quiet = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "bench-diff: unknown option %s\n", a);
      return usage(argv[0]);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) return usage(argv[0]);
  opt.baseline = positional[0];
  opt.fresh = positional[1];

  const bool fresh_is_dir = fs::is_directory(opt.fresh);
  if (opt.write_baseline) {
    // Baseline may not exist yet; its mode follows the fresh side.
    if (fs::exists(opt.baseline) && fs::is_directory(opt.baseline) != fresh_is_dir) {
      std::fprintf(stderr, "bench-diff: %s and %s must both be files or both be "
                           "directories\n",
                   opt.baseline.c_str(), opt.fresh.c_str());
      return 2;
    }
    return refresh_baseline(opt, fresh_is_dir);
  }

  if (!fs::exists(opt.baseline) || !fs::exists(opt.fresh)) {
    std::fprintf(stderr, "bench-diff: %s does not exist\n",
                 fs::exists(opt.baseline) ? opt.fresh.c_str() : opt.baseline.c_str());
    return 2;
  }
  const bool dir_mode = fs::is_directory(opt.baseline);
  if (dir_mode != fresh_is_dir) {
    std::fprintf(stderr,
                 "bench-diff: %s and %s must both be files or both be directories\n",
                 opt.baseline.c_str(), opt.fresh.c_str());
    return 2;
  }

  // Pair up artifacts. In file mode there is exactly one pair; in directory
  // mode artifacts pair by file name, and an unpaired side is reported as a
  // file-level stale/new entry.
  std::vector<std::pair<fs::path, fs::path>> pairs;  // (baseline, fresh)
  std::vector<std::string> stale_files, new_files;
  if (dir_mode) {
    const auto base_files = artifacts_in(opt.baseline);
    const auto fresh_files = artifacts_in(opt.fresh);
    for (const auto& [name, path] : base_files) {
      auto it = fresh_files.find(name);
      if (it == fresh_files.end()) {
        stale_files.push_back(name);
      } else {
        pairs.emplace_back(path, it->second);
      }
    }
    for (const auto& [name, path] : fresh_files) {
      if (!base_files.count(name)) new_files.push_back(name);
    }
    if (base_files.empty()) {
      std::fprintf(stderr, "bench-diff: no BENCH_*.json artifacts under %s\n",
                   opt.baseline.c_str());
      return 2;
    }
  } else {
    pairs.emplace_back(opt.baseline, opt.fresh);
  }

  FlattenOptions flat_opt;
  flat_opt.include_wall = opt.wall_mode;
  std::vector<Sample> base_samples, fresh_samples;
  for (const auto& [base_path, fresh_path] : pairs) {
    srds::obs::Json base_doc, fresh_doc;
    if (!load_doc(base_path, base_doc) || !load_doc(fresh_path, fresh_doc)) return 2;
    std::string err;
    if (!flatten(base_doc, base_samples, &err, flat_opt)) {
      std::fprintf(stderr, "bench-diff: %s: %s\n", base_path.c_str(), err.c_str());
      return 2;
    }
    if (!flatten(fresh_doc, fresh_samples, &err, flat_opt)) {
      std::fprintf(stderr, "bench-diff: %s: %s\n", fresh_path.c_str(), err.c_str());
      return 2;
    }
  }

  DiffOptions diff_opt;
  diff_opt.threshold = opt.threshold;
  diff_opt.wall_threshold = opt.wall_threshold;
  DiffReport report = diff(base_samples, fresh_samples, diff_opt);
  report.stale += stale_files.size();

  if (!opt.quiet) {
    for (const std::string& name : stale_files) {
      std::printf("  %-14s %s: baseline artifact has no fresh counterpart "
                  "(refresh with --write-baseline)\n",
                  "stale-baseline", name.c_str());
    }
    for (const std::string& name : new_files) {
      std::printf("  %-14s %s: fresh artifact not in baseline (record with "
                  "--write-baseline)\n",
                  "new-metric", name.c_str());
    }
    for (const Delta& d : report.deltas) print_delta(d);
  }
  char wall_note[64] = "";
  if (opt.wall_mode) {
    std::snprintf(wall_note, sizeof wall_note, ", wall %.1f%%",
                  100.0 * opt.wall_threshold);
  }
  std::printf("bench-diff: %zu compared, %zu regression%s, %zu stale, "
              "%zu improvement%s, %zu new (threshold %.1f%%%s) -> %s\n",
              report.compared, report.regressions, report.regressions == 1 ? "" : "s",
              report.stale, report.improvements, report.improvements == 1 ? "" : "s",
              report.added, 100.0 * opt.threshold, wall_note,
              report.failed() ? "FAIL" : "ok");

  if (!opt.json_out.empty()) {
    srds::obs::Json out = report.to_json();
    out.set("tool", "bench-diff");
    out.set("threshold", opt.threshold);
    if (opt.wall_mode) out.set("wall_threshold", opt.wall_threshold);
    out.set("baseline", opt.baseline);
    out.set("fresh", opt.fresh);
    const fs::path p(opt.json_out);
    std::error_code ec;
    if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
    if (!srds::obs::write_text_file(opt.json_out, out.dump(2) + "\n")) {
      std::fprintf(stderr, "bench-diff: cannot write %s\n", opt.json_out.c_str());
      return 2;
    }
  }
  return report.failed() ? 1 : 0;
}

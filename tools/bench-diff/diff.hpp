// Core of the bench-diff ratchet gate: flatten BENCH_*.json artifacts
// (src/obs/report.hpp schema v2) into keyed numeric samples, then compare a
// baseline run against a fresh run with regression semantics.
//
// A sample is identified by (bench, label, x, metric):
//   * bench  — the document's "bench" name,
//   * label  — the row's metrics.protocol (or metrics.sweep) string, so
//              benches with several rows per x (Table 1: one per protocol)
//              match the right counterpart,
//   * x      — the row's x value,
//   * metric — the dotted path of the numeric leaf inside "metrics"
//              (nested objects/arrays flatten as "per_party.boost.max",
//              "budgets.2.max_bits", ...).
//
// Each metric carries a direction: for cost metrics (bytes/bits/msgs/
// rounds/locality and the per-party stat leaves) HIGHER is worse, for
// quality metrics (decided/delivered fractions, agreement, budget `ok`)
// LOWER is worse, everything else is informational. A delta beyond the
// threshold in the bad direction is a regression; a baseline sample with no
// fresh counterpart is a stale baseline entry. Either fails the gate —
// improvements and brand-new metrics never do, they are reported so the
// baseline can be ratcheted forward with --write-baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace srds::benchdiff {

/// One flattened numeric leaf of a BENCH document.
struct Sample {
  std::string bench;
  std::string label;   // row identity for multi-row-per-x benches ("" if none)
  double x = 0;
  std::string metric;  // dotted path inside the row's "metrics" object
  double value = 0;
  /// Wall-clock class sample (wall mode only): gated with the wall
  /// threshold widened by the measured run-to-run spread, not the exact
  /// deterministic threshold.
  bool wall = false;
  double spread_rel = 0;  // row's measured (max-min)/median across repeats

  /// Stable map key — x is rendered with the writer's shortest round-trip
  /// formatting so 512 and 512.0 collide as intended.
  std::string key() const;
};

/// Which direction of change is a regression for a given metric path.
enum class Direction { kHigherWorse, kLowerWorse, kInfo };
Direction classify(const std::string& metric);

struct FlattenOptions {
  /// Wall mode (schema 3): promote each row's wall.ns_per_op (carrying its
  /// spread_rel) and allocs_per_op into samples so the ratchet can gate
  /// timing and allocation costs. Off by default — wall clocks are volatile
  /// and must never break the deterministic diff.
  bool include_wall = false;
};

/// Flatten a parsed BENCH document into samples. Returns false (with *err)
/// when the document lacks the expected "bench"/"series" shape. Volatile
/// leaves (timestamp, git_describe, anything wall-clock, allocs, prof)
/// never become samples, so identical logical runs diff clean — unless
/// wall mode explicitly opts the wall/alloc leaves in.
bool flatten(const obs::Json& doc, std::vector<Sample>& out, std::string* err = nullptr,
             const FlattenOptions& options = {});

struct Delta {
  enum class Kind {
    kOk,           // within threshold (or informational)
    kRegression,   // worse than baseline beyond threshold — fails the gate
    kImprovement,  // better than baseline beyond threshold — ratchet candidate
    kStale,        // in baseline, missing from fresh — fails the gate
    kNew,          // in fresh, missing from baseline — reported only
  };
  Kind kind = Kind::kOk;
  Sample sample;        // fresh sample (baseline sample for kStale)
  double base = 0;      // baseline value (meaningless for kNew)
  double rel = 0;       // (fresh - base) / base; +/-inf when base == 0
  Direction direction = Direction::kInfo;
};

struct DiffOptions {
  /// Relative change that counts as a regression/improvement (0.10 = 10%).
  double threshold = 0.10;
  /// Wall-class samples use this (usually looser) relative threshold...
  double wall_threshold = 0.25;
  /// ...widened to spread_guard × the larger measured spread of the two
  /// runs: a median shift smaller than a few spreads is machine noise, not
  /// a regression. The effective wall threshold is
  ///   max(wall_threshold, spread_guard * max(base.spread, fresh.spread)).
  double spread_guard = 3.0;
};

struct DiffReport {
  std::vector<Delta> deltas;  // regressions/stale first, then improvements/new
  std::size_t compared = 0;   // samples present on both sides
  std::size_t regressions = 0;
  std::size_t stale = 0;
  std::size_t improvements = 0;
  std::size_t added = 0;      // fresh samples with no baseline counterpart

  /// Gate verdict: any regression or stale baseline entry fails.
  bool failed() const { return regressions > 0 || stale > 0; }

  obs::Json to_json() const;
};

/// Compare baseline samples against fresh samples.
DiffReport diff(const std::vector<Sample>& baseline, const std::vector<Sample>& fresh,
                const DiffOptions& options = {});

/// Copy of `doc` with the run-volatile top-level fields (timestamp,
/// git_describe) removed — the form --write-baseline checks in, so baseline
/// files only change when the measured numbers do.
obs::Json strip_volatile(const obs::Json& doc);

const char* kind_name(Delta::Kind k);

}  // namespace srds::benchdiff

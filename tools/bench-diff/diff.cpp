#include "diff.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace srds::benchdiff {
namespace {

bool contains(const std::string& s, const char* sub) {
  return s.find(sub) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t len = std::char_traits<char>::length(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::string fmt_x(double x) {
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, x);
  return ec == std::errc() ? std::string(buf, end) : std::string("nan");
}

/// Leaves that change run-to-run without the measured numbers changing.
/// They never become samples — identical logical runs must diff clean.
/// (Wall mode re-admits wall.ns_per_op and allocs_per_op explicitly, with
/// their own noise-aware gate, rather than through this walk.)
bool volatile_key(const std::string& key) {
  return key == "timestamp" || key == "git_describe" || key == "prof" ||
         contains(key, "wall") || contains(key, "span") || contains(key, "allocs") ||
         ends_with(key, "_ns");
}

void walk(const obs::Json& v, std::string& path, const Sample& proto,
          std::vector<Sample>& out) {
  switch (v.type()) {
    case obs::Json::Type::kObject:
      for (const auto& [key, child] : v.members()) {
        if (volatile_key(key)) continue;
        const std::size_t mark = path.size();
        if (!path.empty()) path.push_back('.');
        path += key;
        walk(child, path, proto, out);
        path.resize(mark);
      }
      break;
    case obs::Json::Type::kArray:
      for (std::size_t i = 0; i < v.items().size(); ++i) {
        const std::size_t mark = path.size();
        if (!path.empty()) path.push_back('.');
        path += std::to_string(i);
        walk(v.items()[i], path, proto, out);
        path.resize(mark);
      }
      break;
    case obs::Json::Type::kBool:
    case obs::Json::Type::kInt:
    case obs::Json::Type::kUint:
    case obs::Json::Type::kDouble: {
      Sample s = proto;
      s.metric = path;
      s.value = v.type() == obs::Json::Type::kBool
                    ? (v.as_bool() ? 1.0 : 0.0)
                    : v.as_double(std::numeric_limits<double>::quiet_NaN());
      if (std::isfinite(s.value)) out.push_back(std::move(s));
      break;
    }
    default:
      break;  // strings label rows, nulls are non-finite doubles — not samples
  }
}

}  // namespace

std::string Sample::key() const {
  std::string k;
  k.reserve(bench.size() + label.size() + metric.size() + 16);
  k += bench;
  k.push_back('\x1f');
  k += label;
  k.push_back('\x1f');
  k += fmt_x(x);
  k.push_back('\x1f');
  k += metric;
  return k;
}

Direction classify(const std::string& metric) {
  const std::size_t dot = metric.rfind('.');
  const std::string leaf = dot == std::string::npos ? metric : metric.substr(dot + 1);
  // Identities and budget-spec inputs: a change is a code change, not a
  // measured regression (bound_bits below still catches loosened budgets).
  static const std::set<std::string> info{"argmax", "worst_party", "start", "seed",
                                          "n",      "x",           "c",     "k",
                                          "n_exp",  "min_n"};
  if (info.count(leaf)) return Direction::kInfo;
  if (contains(leaf, "fraction") || contains(leaf, "decided") ||
      contains(leaf, "delivered") || contains(leaf, "correct") || leaf == "agreement" ||
      leaf == "ok" || leaf == "audited") {
    return Direction::kLowerWorse;
  }
  if (contains(leaf, "bytes") || contains(leaf, "bits") || contains(leaf, "msgs") ||
      contains(leaf, "rounds") || leaf == "locality" || leaf == "violators" ||
      leaf == "max" || leaf == "p50" || leaf == "p90" || leaf == "total" ||
      leaf == "ns_per_op" || leaf == "allocs_per_op") {
    return Direction::kHigherWorse;
  }
  return Direction::kInfo;
}

bool flatten(const obs::Json& doc, std::vector<Sample>& out, std::string* err,
             const FlattenOptions& options) {
  const obs::Json* bench = doc.find("bench");
  const obs::Json* series = doc.find("series");
  if (!bench || bench->type() != obs::Json::Type::kString || !series ||
      !series->is_array()) {
    if (err) *err = "not a BENCH document (missing \"bench\" or \"series\")";
    return false;
  }
  for (const obs::Json& row : series->items()) {
    const obs::Json* x = row.find("x");
    const obs::Json* metrics = row.find("metrics");
    if (!x || !metrics || !metrics->is_object()) continue;
    Sample proto;
    proto.bench = bench->as_string();
    proto.x = x->as_double();
    if (const obs::Json* p = metrics->find("protocol");
        p && p->type() == obs::Json::Type::kString) {
      proto.label = p->as_string();
    } else if (const obs::Json* s = metrics->find("sweep");
               s && s->type() == obs::Json::Type::kString) {
      proto.label = s->as_string();
    }
    std::string path;
    walk(*metrics, path, proto, out);
    if (!options.include_wall) continue;
    // Wall mode: lift the schema-3 wall/alloc leaves into gated samples,
    // tagging the wall sample with the row's measured spread so the diff
    // can widen the threshold on noisy rows.
    if (const obs::Json* wall = metrics->find("wall"); wall && wall->is_object()) {
      if (const obs::Json* ns = wall->find("ns_per_op")) {
        Sample s = proto;
        s.metric = "wall.ns_per_op";
        s.value = ns->as_double(std::numeric_limits<double>::quiet_NaN());
        s.wall = true;
        if (const obs::Json* sp = wall->find("spread_rel")) {
          s.spread_rel = sp->as_double(0.0);
        }
        if (std::isfinite(s.value)) out.push_back(std::move(s));
      }
    }
    if (const obs::Json* allocs = metrics->find("allocs_per_op")) {
      Sample s = proto;
      s.metric = "allocs_per_op";
      s.value = allocs->as_double(std::numeric_limits<double>::quiet_NaN());
      if (std::isfinite(s.value)) out.push_back(std::move(s));
    }
  }
  return true;
}

DiffReport diff(const std::vector<Sample>& baseline, const std::vector<Sample>& fresh,
                const DiffOptions& options) {
  DiffReport report;
  std::map<std::string, const Sample*> base_by_key;
  for (const Sample& s : baseline) base_by_key.emplace(s.key(), &s);
  std::set<std::string> seen;

  std::vector<Delta> bad, notable;
  for (const Sample& s : fresh) {
    const std::string key = s.key();
    seen.insert(key);
    auto it = base_by_key.find(key);
    if (it == base_by_key.end()) {
      ++report.added;
      notable.push_back({Delta::Kind::kNew, s, 0, 0, classify(s.metric)});
      continue;
    }
    ++report.compared;
    Delta d;
    d.sample = s;
    d.base = it->second->value;
    d.direction = classify(s.metric);
    if (d.base != 0) {
      d.rel = (s.value - d.base) / std::abs(d.base);
    } else if (s.value != 0) {
      d.rel = s.value > 0 ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
    }
    const double worse = d.direction == Direction::kHigherWorse  ? d.rel
                         : d.direction == Direction::kLowerWorse ? -d.rel
                                                                 : 0.0;
    double gate = options.threshold;
    if (s.wall) {
      // Noise-aware ratchet: a wall median must move beyond BOTH the wall
      // threshold and a few measured spreads before it counts.
      const double spread = std::max(s.spread_rel, it->second->spread_rel);
      gate = std::max(options.wall_threshold, options.spread_guard * spread);
    }
    if (worse > gate) {
      d.kind = Delta::Kind::kRegression;
      ++report.regressions;
      bad.push_back(std::move(d));
    } else if (worse < -gate) {
      d.kind = Delta::Kind::kImprovement;
      ++report.improvements;
      notable.push_back(std::move(d));
    }
  }
  for (const Sample& s : baseline) {
    if (seen.count(s.key())) continue;
    ++report.stale;
    bad.push_back({Delta::Kind::kStale, s, s.value, 0, classify(s.metric)});
  }
  report.deltas = std::move(bad);
  report.deltas.insert(report.deltas.end(), std::make_move_iterator(notable.begin()),
                       std::make_move_iterator(notable.end()));
  return report;
}

const char* kind_name(Delta::Kind k) {
  switch (k) {
    case Delta::Kind::kOk: return "ok";
    case Delta::Kind::kRegression: return "regression";
    case Delta::Kind::kImprovement: return "improvement";
    case Delta::Kind::kStale: return "stale-baseline";
    case Delta::Kind::kNew: return "new-metric";
  }
  return "?";
}

obs::Json DiffReport::to_json() const {
  obs::Json out = obs::Json::object();
  out.set("compared", compared);
  out.set("regressions", regressions);
  out.set("stale", stale);
  out.set("improvements", improvements);
  out.set("added", added);
  out.set("failed", failed());
  obs::Json rows = obs::Json::array();
  for (const Delta& d : deltas) {
    obs::Json row = obs::Json::object();
    row.set("kind", kind_name(d.kind));
    row.set("bench", d.sample.bench);
    if (!d.sample.label.empty()) row.set("label", d.sample.label);
    row.set("x", d.sample.x);
    row.set("metric", d.sample.metric);
    if (d.kind != Delta::Kind::kNew) row.set("baseline", d.base);
    if (d.kind != Delta::Kind::kStale) row.set("value", d.sample.value);
    if (d.kind == Delta::Kind::kRegression || d.kind == Delta::Kind::kImprovement) {
      row.set("rel_change", d.rel);  // non-finite serializes as null
    }
    rows.push_back(std::move(row));
  }
  out.set("deltas", std::move(rows));
  return out;
}

obs::Json strip_volatile(const obs::Json& doc) {
  if (!doc.is_object()) return doc;
  obs::Json out = obs::Json::object();
  for (const auto& [key, value] : doc.members()) {
    if (key == "timestamp" || key == "git_describe" || key == "prof") continue;
    out.set(key, value);
  }
  return out;
}

}  // namespace srds::benchdiff

// Ablations over the design knobs DESIGN.md calls out:
//   1. certificate redundancy ρ in the certified dissemination ("vote
//      small, certify sparse"): delivery rate vs bytes;
//   2. OWF-SRDS sortition parameter λ: security margin vs certificate size;
//   3. tree committee size factor: protocol success vs cost.
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "srds/games.hpp"
#include "srds/owf_srds.hpp"
#include "tree/comm_tree.hpp"

namespace {

using namespace srds;
using namespace srds::bench;

void redundancy_ablation(Reporter& rep, const Args& args) {
  print_header("Ablation 1: certificate redundancy rho (n=256, beta=0.2, pi_ba/snark)");
  std::vector<int> widths{8, 12, 18, 18};
  print_row({"rho", "decided", "max boost bytes", "agreement"}, widths);
  // Redundancy is plumbed through PiBaConfig; run_ba uses the default (3),
  // so this ablation drives the config directly via the runner's defaults
  // at rho=3 and brackets it with direct comparisons below.
  for (std::size_t rho : {1u, 2u, 3u, 6u}) {
    obs::Ledger ledger;
    BaRunConfig cfg;
    cfg.n = 256;
    cfg.beta = 0.2;
    cfg.seed = 500 + rho;
    cfg.protocol = BoostProtocol::kPiBaSnark;
    cfg.certificate_redundancy = rho;
    cfg.ledger = &ledger;
    BaRunResult r;
    RepeatStats rs = timed_repeats(args.repeats, [&] { r = run_ba(cfg); });
    const obs::PartyStat pp =
        ledger.stat(obs::LedgerField::kBytesTotal, ledger.phase_index("boost"));
    print_row({std::to_string(rho), fmt(100.0 * r.decided_fraction(), 1) + "%",
               fmt_bytes(static_cast<double>(pp.max)),
               r.agreement ? "yes" : "NO"},
              widths);
    obs::Json m = obs::Json::object();
    m.set("ablation", "redundancy");
    m.set("decided_fraction", r.decided_fraction());
    m.set("max_boost_bytes", pp.max);
    m.set("p50_boost_bytes", pp.p50);
    m.set("agreement", r.agreement);
    rs.attach(m);
    rep.add_row(static_cast<double>(rho), std::move(m));
  }
  say("Expected: delivery already ~100%% at rho=1 thanks to the PRF round;\n"
      "bytes grow with rho — rho=3 is belt-and-braces at ~moderate cost.\n");
}

void lambda_ablation(Reporter& rep, const Args& args) {
  print_header("Ablation 2: OWF-SRDS sortition lambda (robustness@t=10% / forgery@<n/3 over 12 trials, n=180)");
  std::vector<int> widths{10, 16, 16, 18};
  print_row({"lambda", "robust fails", "forgeries", "aggregate size"}, widths);
  for (std::size_t lambda : {12u, 24u, 48u, 96u}) {
    std::size_t robust_fails = 0, forgeries = 0, agg_size = 0;
    RepeatStats rs = timed_repeats(args.repeats, [&] {
      robust_fails = 0;
      forgeries = 0;
      for (std::size_t trial = 0; trial < 12; ++trial) {
      CommTree tree = make_game_tree(180, 600 + trial);
      OwfSrdsParams p;
      p.n_signers = tree.virtual_count();
      p.expected_signers = lambda;
      p.backend = BaseSigBackend::kCompact;
      {
        OwfSrds scheme(p, 700 + trial);
        GameConfig cfg;
        cfg.t = 18;
        cfg.strategy = AttackStrategy::kWrongMessage;
        cfg.seed = 800 + trial;
        auto out = run_robustness_game(scheme, tree, cfg);
        robust_fails += out.adversary_wins ? 1 : 0;
      }
      {
        OwfSrdsParams fp = p;
        fp.n_signers = 180;
        OwfSrds scheme(fp, 900 + trial);
        GameConfig cfg;
        cfg.t = 59;
        cfg.strategy = AttackStrategy::kWrongMessage;
        cfg.seed = 1000 + trial;
        forgeries += run_forgery_game(scheme, cfg).adversary_wins ? 1 : 0;
      }
      }
      // Aggregate size sample.
      OwfSrdsParams p;
      p.n_signers = 400;
      p.expected_signers = lambda;
      p.backend = BaseSigBackend::kCompact;
      OwfSrds scheme(p, 1100);
      for (std::size_t i = 0; i < 400; ++i) scheme.keygen(i);
      scheme.finalize_keys();
      Bytes m = to_bytes("m");
      std::vector<Bytes> sigs;
      for (std::size_t i = 0; i < 400; ++i) {
        Bytes s = scheme.sign(i, m);
        if (!s.empty()) sigs.push_back(std::move(s));
      }
      agg_size = scheme.aggregate(m, sigs).size();
    });
    print_row({std::to_string(lambda), std::to_string(robust_fails) + "/12",
               std::to_string(forgeries) + "/12",
               fmt_bytes(static_cast<double>(agg_size))},
              widths);
    obs::Json jm = obs::Json::object();
    jm.set("ablation", "lambda");
    jm.set("robust_fails", robust_fails);
    jm.set("forgeries", forgeries);
    jm.set("trials", 12);
    jm.set("aggregate_bytes", agg_size);
    rs.attach(jm);
    rep.add_row(static_cast<double>(lambda), std::move(jm));
  }
  say("Expected: small lambda leaves no concentration margin (both failure\n"
      "columns light up); lambda >= 48 is clean; size grows linearly in\n"
      "lambda — the paper's polylog(n) knob traded against poly(kappa) bytes.\n");
}

void committee_ablation(Reporter& rep, const Args& args) {
  print_header("Ablation 3: tree committee-size factor (n=256, beta=0.2, pi_ba/snark)");
  std::vector<int> widths{22, 12, 12, 18};
  print_row({"committee size", "decided", "rounds", "max boost bytes"}, widths);
  for (double factor : {1.0, 2.0, 3.0}) {
    obs::Ledger ledger;
    BaRunConfig cfg;
    cfg.n = 256;
    cfg.beta = 0.2;
    cfg.seed = 1300;
    cfg.protocol = BoostProtocol::kPiBaSnark;
    cfg.committee_factor = factor;
    cfg.ledger = &ledger;
    BaRunResult r;
    RepeatStats rs = timed_repeats(args.repeats, [&] { r = run_ba(cfg); });
    const obs::PartyStat pp =
        ledger.stat(obs::LedgerField::kBytesTotal, ledger.phase_index("boost"));
    char label[32];
    std::snprintf(label, sizeof label, "%.0fx log n", 2 * factor);
    print_row({label, fmt(100.0 * r.decided_fraction(), 1) + "%",
               std::to_string(r.rounds),
               fmt_bytes(static_cast<double>(pp.max))},
              widths);
    obs::Json m = obs::Json::object();
    m.set("ablation", "committee-factor");
    m.set("decided_fraction", r.decided_fraction());
    m.set("rounds", r.rounds);
    m.set("max_boost_bytes", pp.max);
    m.set("p50_boost_bytes", pp.p50);
    rs.attach(m);
    rep.add_row(factor, std::move(m));
  }
  say("Expected: bigger committees buy corruption margin with a superlinear\n"
      "byte cost — the paper's log^3 n committees are the asymptotic version\n"
      "of the same trade.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  Reporter rep("ablation_design");
  redundancy_ablation(rep, args);
  lambda_ablation(rep, args);
  committee_ablation(rep, args);
  finish_report(rep, args);
  return 0;
}

// Shared helpers for the experiment binaries: fixed-width table printing
// and log-log slope estimation for the scaling figures.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace srds::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt_bytes(double b) {
  char buf[32];
  if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", b);
  }
  return buf;
}

inline std::string fmt(double v, int prec = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

/// Least-squares slope of log(y) against log(x): the growth exponent.
/// (Slope ~1 = linear, ~0.5 = sqrt, ~0 = polylog-flat.)
inline double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    double lx = std::log(xs[i]), ly = std::log(ys[i] > 0 ? ys[i] : 1.0);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom == 0 ? 0 : (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace srds::bench

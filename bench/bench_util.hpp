// Shared helpers for the experiment binaries: fixed-width table printing,
// log-log slope estimation for the scaling figures, and glue between the
// observability layer (obs/) and the bench JSON artifacts. Every binary
// parses the shared CLI (obs/bench_args.hpp) and routes its rows through a
// bench::Reporter in addition to the text tables.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/alloc_hooks.hpp"
#include "obs/bench_args.hpp"
#include "obs/budget.hpp"
#include "obs/ledger.hpp"
#include "obs/prof.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"

namespace srds::bench {

/// Allocations observed process-wide since startup. Nonzero only when the
/// binary links the srds_alloc_hooks OBJECT library (obs/alloc_hooks.hpp).
inline std::uint64_t alloc_ops() { return obs::alloc_ops(); }

/// Wall/alloc statistics over the repeats of one measured row.
struct RepeatStats {
  double wall_ns_median = 0;   // median wall time of one repeat (ns)
  double spread_rel = 0;       // (max - min) / median over the repeats
  double allocs_per_op = 0;    // median allocations of one repeat
  std::size_t repeats = 1;

  /// The schema-3 per-row "wall" metrics object.
  obs::Json wall_json() const {
    obs::Json j = obs::Json::object();
    j.set("ns_per_op", wall_ns_median);
    j.set("spread_rel", spread_rel);
    j.set("repeats", static_cast<unsigned long long>(repeats));
    return j;
  }

  /// Attach the schema-3 wall/allocs metrics to a row's metrics object.
  void attach(obs::Json& metrics) const {
    metrics.set("wall", wall_json());
    metrics.set("allocs_per_op", allocs_per_op);
  }
};

/// Run `fn` `repeats` times, timing each run (steady_clock) and counting
/// its allocations; report the median and the relative spread so the
/// bench-diff wall-metric gate can separate noise from regression. `fn`
/// must be a self-contained repeat: it resets whatever run state it reuses
/// (tracer/ledger), so only the last repeat's artifacts survive for the
/// row's deterministic metrics.
template <typename F>
RepeatStats timed_repeats(std::size_t repeats, F&& fn) {
  if (repeats == 0) repeats = 1;
  std::vector<double> ns;
  std::vector<double> allocs;
  ns.reserve(repeats);
  allocs.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    const std::uint64_t a0 = alloc_ops();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
    allocs.push_back(static_cast<double>(alloc_ops() - a0));
  }
  std::sort(ns.begin(), ns.end());
  std::sort(allocs.begin(), allocs.end());
  RepeatStats s;
  s.repeats = repeats;
  s.wall_ns_median = ns[ns.size() / 2];
  s.allocs_per_op = allocs[allocs.size() / 2];
  if (s.wall_ns_median > 0) {
    s.spread_rel = (ns.back() - ns.front()) / s.wall_ns_median;
  }
  return s;
}

inline void print_header(const std::string& title) {
  if (quiet()) return;
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  if (quiet()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

/// printf that respects --quiet (for the "Expected shape" footers).
template <typename... A>
void say(const char* fmt, A... args) {
  if (quiet()) return;
  std::printf(fmt, args...);
}

/// Per-phase byte/round/message breakdown of a traced run, as a JSON
/// object {phase: {rounds, msgs_sent, bytes_sent}} for Reporter metrics.
inline obs::Json phase_metrics(const obs::RoundTracer& tracer) {
  obs::Json out = obs::Json::object();
  for (const auto& p : tracer.phase_totals()) {
    obs::Json j = obs::Json::object();
    j.set("start", p.start);
    j.set("rounds", p.rounds);
    j.set("msgs_sent", p.msgs_sent);
    j.set("bytes_sent", p.bytes_sent);
    out.set(p.name, std::move(j));
  }
  return out;
}

/// Per-party distribution block for Reporter metrics, from the ledger: one
/// {max, argmax, p50, p90, total} stat of bytes sent+received per party for
/// the whole run and for each recorded protocol phase — "boost" is the
/// Table 1 axis (max communication per party in the boost step).
inline obs::Json perparty_metrics(const obs::Ledger& ledger) {
  auto block = [&](std::size_t phase) {
    obs::PartyStat s = ledger.stat(obs::LedgerField::kBytesTotal, phase);
    obs::Json j = obs::Json::object();
    j.set("max", s.max);
    j.set("argmax", s.argmax);
    j.set("p50", s.p50);
    j.set("p90", s.p90);
    j.set("total", s.total);
    return j;
  };
  obs::Json out = obs::Json::object();
  out.set("run", block(obs::Ledger::kAllPhases));
  for (std::size_t p = 0; p < ledger.phase_count(); ++p) {
    out.set(ledger.phase_name(p), block(p));
  }
  return out;
}

/// Print budget findings (failed evaluations) to stderr; returns how many
/// there were. Benches running with --strict-budgets exit(3) on > 0 — but
/// run_ba already throws BudgetViolation under cfg.strict_budgets, so this
/// is for the non-strict "record and continue" path.
inline std::size_t report_budget_findings(const std::vector<obs::BudgetEval>& evals) {
  std::size_t findings = 0;
  for (const auto& e : evals) {
    if (e.skipped || e.ok) continue;
    ++findings;
    std::fprintf(stderr,
                 "budget FINDING: %s phase '%s' n=%zu: max %llu bits > bound %.0f "
                 "(%llu/%zu parties over)\n",
                 e.protocol.c_str(), e.phase.c_str(), e.n,
                 static_cast<unsigned long long>(e.max_bits), e.bound_bits,
                 static_cast<unsigned long long>(e.violators), e.audited);
  }
  return findings;
}

/// Write the Reporter artifact (if --json-out is active) and tell the user
/// where it went.
inline void finish_report(const Reporter& rep, const Args& args) {
  if (!args.json_enabled()) return;
  std::string path = rep.write(args.json_out);
  if (path.empty()) {
    std::fprintf(stderr, "warning: failed to write BENCH_%s.json under %s\n",
                 rep.name().c_str(), args.json_out.c_str());
  } else {
    say("\n[json] %s\n", path.c_str());
  }
}

/// Write PROF_<name>.json (the standalone prof snapshot) under --json-out.
/// No-op unless --prof is active; returns the path or empty.
inline std::string write_prof_artifact(const Args& args, const std::string& name) {
  if (!args.json_enabled() || !obs::prof_enabled()) return {};
  std::string path = args.json_out;
  if (path.back() != '/') path.push_back('/');
  path += "PROF_" + name + ".json";
  if (!obs::write_text_file(path, obs::prof_to_json().dump(2) + "\n")) return {};
  say("[json] %s\n", path.c_str());
  return path;
}

inline std::string fmt_bytes(double b) {
  char buf[32];
  if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", b);
  }
  return buf;
}

inline std::string fmt(double v, int prec = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

/// Least-squares slope of log(y) against log(x): the growth exponent.
/// (Slope ~1 = linear, ~0.5 = sqrt, ~0 = polylog-flat.)
inline double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    double lx = std::log(xs[i]), ly = std::log(ys[i] > 0 ? ys[i] : 1.0);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom == 0 ? 0 : (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace srds::bench

// Experiment "Fig R" — resilience under network chaos (docs/fault_model.md).
// Sweeps message-drop rate and bounded delay for every protocol row and
// reports the decided fraction, whether agreement held, and the extra rounds
// the hardened schedule spent (grace window + retransmissions) relative to
// the fault-free run. The headline series the acceptance criteria pin down:
// pi_ba/snark at n=256 must keep agreement at every drop rate in
// {0, 0.01, 0.05, 0.10} while availability degrades gracefully.
//
// Fig R3 is the resilience *frontier*: every attack campaign of the
// adaptive-adversary engine (net/campaign.hpp) over a corruption-rate x
// drop-rate grid at --frontier-n (default 1024). The claim it charts:
// pi_ba/snark keeps agreement across the whole grid while at least one
// baseline breaks (acd19-star loses agreement under the supreme-committee
// takeover and under the eclipse), so the frontier separation is a property
// of the certificate discipline, not of favourable schedules.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  // Binary-local flag: the frontier's party count (the R1/R2 sweeps keep
  // their own --n-list-driven size). 0 skips the frontier entirely.
  std::size_t frontier_n = 1024;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--frontier-n") == 0) {
      frontier_n = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  const std::vector<std::pair<BoostProtocol, const char*>> protocols{
      {BoostProtocol::kNaive, "naive"},
      {BoostProtocol::kMultisig, "bgt13-multisig"},
      {BoostProtocol::kStar, "acd19-star"},
      {BoostProtocol::kSampling, "ks11-sampling"},
      {BoostProtocol::kPiBaOwf, "pi_ba/owf"},
      {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
  };
  const std::vector<double> drop_rates{0.0, 0.01, 0.05, 0.10};
  const std::size_t kN = args.n_or(256);
  const double kBeta = 0.1;
  const std::uint64_t seed = args.seed_or(101);

  Reporter rep("fig_resilience");
  rep.set_param("n", kN);
  rep.set_param("beta", kBeta);
  rep.set_param("seed", seed);
  double row_idx = 0;

  // Chaos runs carry a ledger for the per-party series, but budgets are
  // never enforced here: the bounds are calibrated on the paper's fault-free
  // schedule, and chaos hardening (retransmits, grace traffic) is allowed to
  // exceed them — availability is the quantity under test.
  auto run_with = [&](BoostProtocol proto, const FaultPlan& plan, obs::Ledger& ledger) {
    BaRunConfig cfg;
    cfg.n = kN;
    cfg.beta = kBeta;
    cfg.seed = seed;
    cfg.protocol = proto;
    cfg.faults = plan;
    cfg.ledger = &ledger;
    return run_ba(cfg);
  };

  // Fault-free baseline rounds per protocol (for the extra-rounds column).
  // These are the paper-schedule runs, so the declared communication budgets
  // apply — under --strict-budgets a violation here aborts the binary.
  std::vector<std::size_t> base_rounds;
  for (auto [proto, label] : protocols) {
    BaRunConfig cfg;
    cfg.n = kN;
    cfg.beta = kBeta;
    cfg.seed = seed;
    cfg.protocol = proto;
    obs::Ledger base_ledger;
    cfg.ledger = &base_ledger;
    cfg.strict_budgets = args.strict_budgets;
    base_rounds.push_back(run_ba(cfg).rounds);
  }

  print_header("Fig R1: decided fraction vs drop rate  [n=256, beta=0.1]");
  {
    std::vector<int> widths{18};
    std::vector<std::string> head{"protocol"};
    for (double rate : drop_rates) {
      head.push_back("drop=" + fmt(rate, 2));
      widths.push_back(12);
    }
    head.push_back("agreement");
    widths.push_back(11);
    head.push_back("extra-rounds");
    widths.push_back(12);
    print_row(head, widths);

    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      auto [proto, label] = protocols[pi];
      std::vector<std::string> cells{label};
      bool all_agree = true;
      std::size_t extra = 0;
      obs::Json by_rate = obs::Json::object();
      obs::Json pp_by_rate = obs::Json::object();
      RepeatStats rs = timed_repeats(args.repeats, [&, proto = proto] {
        cells.resize(1);
        all_agree = true;
        extra = 0;
        by_rate = obs::Json::object();
        pp_by_rate = obs::Json::object();
        for (double rate : drop_rates) {
          FaultPlan plan;
          plan.seed = 2026;
          plan.drop_prob = rate;
          obs::Ledger ledger;
          auto r = run_with(proto, plan, ledger);
          cells.push_back(fmt(r.decided_fraction(), 3));
          by_rate.set(fmt(rate, 2), r.decided_fraction());
          const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
          obs::Json ppj = obs::Json::object();
          ppj.set("max", pp.max);
          ppj.set("p50", pp.p50);
          pp_by_rate.set(fmt(rate, 2), std::move(ppj));
          all_agree = all_agree && r.agreement;
          extra = r.rounds > base_rounds[pi] ? r.rounds - base_rounds[pi] : 0;
        }
      });
      cells.push_back(all_agree ? "yes" : "NO");
      cells.push_back(std::to_string(extra));
      print_row(cells, widths);

      obs::Json m = obs::Json::object();
      m.set("sweep", "drop");
      m.set("protocol", label);
      m.set("decided_fraction_by_drop", std::move(by_rate));
      m.set("per_party_bytes_by_drop", std::move(pp_by_rate));
      m.set("agreement", all_agree);
      m.set("extra_rounds", extra);
      rs.attach(m);
      rep.add_row(row_idx++, std::move(m));
    }
  }

  print_header("Fig R2: decided fraction vs bounded delay  [n=256, beta=0.1, p_delay=0.25]");
  {
    const std::vector<std::size_t> delays{1, 2, 3};
    std::vector<int> widths{18};
    std::vector<std::string> head{"protocol"};
    for (auto d : delays) {
      head.push_back("Delta=" + std::to_string(d));
      widths.push_back(12);
    }
    head.push_back("agreement");
    widths.push_back(11);
    head.push_back("extra-rounds");
    widths.push_back(12);
    print_row(head, widths);

    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      auto [proto, label] = protocols[pi];
      std::vector<std::string> cells{label};
      bool all_agree = true;
      std::size_t extra = 0;
      obs::Json by_delay = obs::Json::object();
      obs::Json pp_by_delay = obs::Json::object();
      RepeatStats rs = timed_repeats(args.repeats, [&, proto = proto] {
        cells.resize(1);
        all_agree = true;
        extra = 0;
        by_delay = obs::Json::object();
        pp_by_delay = obs::Json::object();
        for (auto d : delays) {
          FaultPlan plan;
          plan.seed = 2027;
          plan.delay_prob = 0.25;
          plan.max_delay = d;
          obs::Ledger ledger;
          auto r = run_with(proto, plan, ledger);
          cells.push_back(fmt(r.decided_fraction(), 3));
          by_delay.set(std::to_string(d), r.decided_fraction());
          const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
          obs::Json ppj = obs::Json::object();
          ppj.set("max", pp.max);
          ppj.set("p50", pp.p50);
          pp_by_delay.set(std::to_string(d), std::move(ppj));
          all_agree = all_agree && r.agreement;
          extra = r.rounds > base_rounds[pi] ? r.rounds - base_rounds[pi] : 0;
        }
      });
      cells.push_back(all_agree ? "yes" : "NO");
      cells.push_back(std::to_string(extra));
      print_row(cells, widths);

      obs::Json m = obs::Json::object();
      m.set("sweep", "delay");
      m.set("protocol", label);
      m.set("decided_fraction_by_delay", std::move(by_delay));
      m.set("per_party_bytes_by_delay", std::move(pp_by_delay));
      m.set("agreement", all_agree);
      m.set("extra_rounds", extra);
      rs.attach(m);
      rep.add_row(row_idx++, std::move(m));
    }
  }

  if (frontier_n > 0) {
    print_header("Fig R3: resilience frontier  [n=" + std::to_string(frontier_n) +
                 ", campaign x corruption-rate x drop-rate]");
    const std::vector<std::pair<BoostProtocol, const char*>> frontier_protocols{
        {BoostProtocol::kNaive, "naive"},
        {BoostProtocol::kStar, "acd19-star"},
        {BoostProtocol::kSampling, "ks11-sampling"},
        {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
    };
    const CampaignKind campaigns[] = {CampaignKind::kTakeover, CampaignKind::kEclipse,
                                      CampaignKind::kPartitionHeal};
    const std::vector<double> rates{0.0, 0.05, 0.30};
    const std::vector<double> drops{0.0, 0.05};

    std::vector<int> widths{15, 15};
    std::vector<std::string> head{"protocol", "campaign"};
    for (double rate : rates) {
      for (double drop : drops) {
        head.push_back("r" + fmt(rate, 2) + "/d" + fmt(drop, 2));
        widths.push_back(12);
      }
    }
    head.push_back("agreement");
    widths.push_back(11);
    print_row(head, widths);

    for (auto [proto, label] : frontier_protocols) {
      for (CampaignKind kind : campaigns) {
        std::vector<std::string> cells{label, campaign_name(kind)};
        bool all_agree = true;
        obs::Json decided = obs::Json::object();
        obs::Json agreement = obs::Json::object();
        obs::Json granted = obs::Json::object();
        RepeatStats rs = timed_repeats(args.repeats, [&, proto = proto] {
          cells.resize(2);
          all_agree = true;
          decided = obs::Json::object();
          agreement = obs::Json::object();
          granted = obs::Json::object();
          for (double rate : rates) {
            for (double drop : drops) {
            BaRunConfig cfg;
            cfg.n = frontier_n;
            cfg.beta = 0.0;
            cfg.seed = seed;
            cfg.protocol = proto;
            cfg.campaign = kind;
            cfg.corruption_rate = rate;
            if (drop > 0.0) {
              FaultPlan plan;
              plan.seed = 2028;
              plan.drop_prob = drop;
              cfg.faults = plan;
            }
              auto r = run_ba(cfg);
              const std::string key = "r" + fmt(rate, 2) + "_d" + fmt(drop, 2);
              // The frontier metric: a cell is "held" only if agreement did —
              // a decided fraction reached by deciding *differently* is worse
              // than not deciding, so it renders as BROKE, not as a number.
              cells.push_back(r.agreement ? fmt(r.decided_fraction(), 3) : "BROKE");
              decided.set(key, r.decided_fraction());
              agreement.set(key, r.agreement);
              granted.set(key, r.adaptively_corrupted);
              all_agree = all_agree && r.agreement;
            }
          }
        });
        cells.push_back(all_agree ? "yes" : "NO");
        print_row(cells, widths);

        obs::Json m = obs::Json::object();
        m.set("sweep", "frontier");
        m.set("protocol", label);
        m.set("campaign", campaign_name(kind));
        m.set("frontier_n", frontier_n);
        m.set("decided_fraction_by_cell", std::move(decided));
        m.set("agreement_by_cell", std::move(agreement));
        m.set("corruptions_by_cell", std::move(granted));
        m.set("agreement", all_agree);
        rs.attach(m);
        rep.add_row(row_idx++, std::move(m));
      }
    }
    say("\nFrontier shape: pi_ba/snark reads \"yes\" in every campaign row (its\n"
        "decided fraction may dip -- the certificate discipline trades liveness,\n"
        "never safety), while acd19-star reads NO under takeover (a seized slim\n"
        "majority of the supreme committee split-pushes conflicting signed\n"
        "values) and under eclipse (victims decide on a forged dissemination\n"
        "feed). That separation is the resilience frontier the bench-diff gate\n"
        "ratchets.\n");
  }

  say("\nExpected shape: agreement must read \"yes\" in every row of both tables\n"
      "-- fault injection attacks availability, never safety. At n=256 the\n"
      "hardening (step-6 certificate retransmits bounded by\n"
      "certificate_redundancy, plus the grace window for late boost traffic)\n"
      "holds every decided fraction at 1.000 through 10%% loss: committee-level\n"
      "redundancy means a dropped share is re-covered by a sibling or a\n"
      "retransmit. The knee only appears at harsher rates (the chaos tests\n"
      "probe 25%%+ at n=64, where committees are thinner). Bounded delay costs\n"
      "availability only when a message's slack outlives the grace window, so\n"
      "the Delta sweep stays at 1.000 throughout. extra-rounds is the schedule\n"
      "stretch the hardening spends (grace window + step-6 retransmits),\n"
      "identical across the sweep since it derives from the plan, not the\n"
      "realized faults.\n");
  finish_report(rep, args);
  return 0;
}

// Experiment "Fig R" — resilience under network chaos (docs/fault_model.md).
// Sweeps message-drop rate and bounded delay for every protocol row and
// reports the decided fraction, whether agreement held, and the extra rounds
// the hardened schedule spent (grace window + retransmissions) relative to
// the fault-free run. The headline series the acceptance criteria pin down:
// pi_ba/snark at n=256 must keep agreement at every drop rate in
// {0, 0.01, 0.05, 0.10} while availability degrades gracefully.
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::vector<std::pair<BoostProtocol, const char*>> protocols{
      {BoostProtocol::kNaive, "naive"},
      {BoostProtocol::kMultisig, "bgt13-multisig"},
      {BoostProtocol::kStar, "acd19-star"},
      {BoostProtocol::kSampling, "ks11-sampling"},
      {BoostProtocol::kPiBaOwf, "pi_ba/owf"},
      {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
  };
  const std::vector<double> drop_rates{0.0, 0.01, 0.05, 0.10};
  const std::size_t kN = args.n_or(256);
  const double kBeta = 0.1;
  const std::uint64_t seed = args.seed_or(101);

  Reporter rep("fig_resilience");
  rep.set_param("n", kN);
  rep.set_param("beta", kBeta);
  rep.set_param("seed", seed);
  double row_idx = 0;

  // Chaos runs carry a ledger for the per-party series, but budgets are
  // never enforced here: the bounds are calibrated on the paper's fault-free
  // schedule, and chaos hardening (retransmits, grace traffic) is allowed to
  // exceed them — availability is the quantity under test.
  auto run_with = [&](BoostProtocol proto, const FaultPlan& plan, obs::Ledger& ledger) {
    BaRunConfig cfg;
    cfg.n = kN;
    cfg.beta = kBeta;
    cfg.seed = seed;
    cfg.protocol = proto;
    cfg.faults = plan;
    cfg.ledger = &ledger;
    return run_ba(cfg);
  };

  // Fault-free baseline rounds per protocol (for the extra-rounds column).
  std::vector<std::size_t> base_rounds;
  for (auto [proto, label] : protocols) {
    BaRunConfig cfg;
    cfg.n = kN;
    cfg.beta = kBeta;
    cfg.seed = seed;
    cfg.protocol = proto;
    base_rounds.push_back(run_ba(cfg).rounds);
  }

  print_header("Fig R1: decided fraction vs drop rate  [n=256, beta=0.1]");
  {
    std::vector<int> widths{18};
    std::vector<std::string> head{"protocol"};
    for (double rate : drop_rates) {
      head.push_back("drop=" + fmt(rate, 2));
      widths.push_back(12);
    }
    head.push_back("agreement");
    widths.push_back(11);
    head.push_back("extra-rounds");
    widths.push_back(12);
    print_row(head, widths);

    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      auto [proto, label] = protocols[pi];
      std::vector<std::string> cells{label};
      bool all_agree = true;
      std::size_t extra = 0;
      obs::Json by_rate = obs::Json::object();
      obs::Json pp_by_rate = obs::Json::object();
      for (double rate : drop_rates) {
        FaultPlan plan;
        plan.seed = 2026;
        plan.drop_prob = rate;
        obs::Ledger ledger;
        auto r = run_with(proto, plan, ledger);
        cells.push_back(fmt(r.decided_fraction(), 3));
        by_rate.set(fmt(rate, 2), r.decided_fraction());
        const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
        obs::Json ppj = obs::Json::object();
        ppj.set("max", pp.max);
        ppj.set("p50", pp.p50);
        pp_by_rate.set(fmt(rate, 2), std::move(ppj));
        all_agree = all_agree && r.agreement;
        extra = r.rounds > base_rounds[pi] ? r.rounds - base_rounds[pi] : 0;
      }
      cells.push_back(all_agree ? "yes" : "NO");
      cells.push_back(std::to_string(extra));
      print_row(cells, widths);

      obs::Json m = obs::Json::object();
      m.set("sweep", "drop");
      m.set("protocol", label);
      m.set("decided_fraction_by_drop", std::move(by_rate));
      m.set("per_party_bytes_by_drop", std::move(pp_by_rate));
      m.set("agreement", all_agree);
      m.set("extra_rounds", extra);
      rep.add_row(row_idx++, std::move(m));
    }
  }

  print_header("Fig R2: decided fraction vs bounded delay  [n=256, beta=0.1, p_delay=0.25]");
  {
    const std::vector<std::size_t> delays{1, 2, 3};
    std::vector<int> widths{18};
    std::vector<std::string> head{"protocol"};
    for (auto d : delays) {
      head.push_back("Delta=" + std::to_string(d));
      widths.push_back(12);
    }
    head.push_back("agreement");
    widths.push_back(11);
    head.push_back("extra-rounds");
    widths.push_back(12);
    print_row(head, widths);

    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      auto [proto, label] = protocols[pi];
      std::vector<std::string> cells{label};
      bool all_agree = true;
      std::size_t extra = 0;
      obs::Json by_delay = obs::Json::object();
      obs::Json pp_by_delay = obs::Json::object();
      for (auto d : delays) {
        FaultPlan plan;
        plan.seed = 2027;
        plan.delay_prob = 0.25;
        plan.max_delay = d;
        obs::Ledger ledger;
        auto r = run_with(proto, plan, ledger);
        cells.push_back(fmt(r.decided_fraction(), 3));
        by_delay.set(std::to_string(d), r.decided_fraction());
        const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
        obs::Json ppj = obs::Json::object();
        ppj.set("max", pp.max);
        ppj.set("p50", pp.p50);
        pp_by_delay.set(std::to_string(d), std::move(ppj));
        all_agree = all_agree && r.agreement;
        extra = r.rounds > base_rounds[pi] ? r.rounds - base_rounds[pi] : 0;
      }
      cells.push_back(all_agree ? "yes" : "NO");
      cells.push_back(std::to_string(extra));
      print_row(cells, widths);

      obs::Json m = obs::Json::object();
      m.set("sweep", "delay");
      m.set("protocol", label);
      m.set("decided_fraction_by_delay", std::move(by_delay));
      m.set("per_party_bytes_by_delay", std::move(pp_by_delay));
      m.set("agreement", all_agree);
      m.set("extra_rounds", extra);
      rep.add_row(row_idx++, std::move(m));
    }
  }

  say("\nExpected shape: agreement must read \"yes\" in every row of both tables\n"
      "-- fault injection attacks availability, never safety. At n=256 the\n"
      "hardening (step-6 certificate retransmits bounded by\n"
      "certificate_redundancy, plus the grace window for late boost traffic)\n"
      "holds every decided fraction at 1.000 through 10%% loss: committee-level\n"
      "redundancy means a dropped share is re-covered by a sibling or a\n"
      "retransmit. The knee only appears at harsher rates (the chaos tests\n"
      "probe 25%%+ at n=64, where committees are thinner). Bounded delay costs\n"
      "availability only when a message's slack outlives the grace window, so\n"
      "the Delta sweep stays at 1.000 throughout. extra-rounds is the schedule\n"
      "stretch the hardening spends (grace window + step-6 retransmits),\n"
      "identical across the sweep since it derives from the plan, not the\n"
      "realized faults.\n");
  finish_report(rep, args);
  return 0;
}

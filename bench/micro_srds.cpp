// Micro-benchmarks for SRDS operations (google-benchmark): Sign, Aggregate
// (the Aggregate1/Aggregate2 decomposition), and Verify for both
// constructions and both base-signature backends, plus the simulated
// SNARK/PCD prove/verify primitives.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "micro_main.hpp"
#include "snark/snark.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace {

using namespace srds;

std::unique_ptr<OwfSrds> owf_scheme(std::size_t n, BaseSigBackend backend) {
  OwfSrdsParams p;
  p.n_signers = n;
  p.expected_signers = 48;
  p.backend = backend;
  auto scheme = std::make_unique<OwfSrds>(p, 11);
  for (std::size_t i = 0; i < n; ++i) scheme->keygen(i);
  scheme->finalize_keys();
  return scheme;
}

std::unique_ptr<SnarkSrds> snark_scheme(std::size_t n, BaseSigBackend backend) {
  SnarkSrdsParams p;
  p.n_signers = n;
  p.backend = backend;
  auto scheme = std::make_unique<SnarkSrds>(p, 12);
  for (std::size_t i = 0; i < n; ++i) scheme->keygen(i);
  scheme->finalize_keys();
  return scheme;
}

std::vector<Bytes> all_signatures(SrdsScheme& scheme, const Bytes& m) {
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < scheme.signer_count(); ++i) {
    Bytes s = scheme.sign(i, m);
    if (!s.empty()) sigs.push_back(std::move(s));
  }
  return sigs;
}

template <typename MakeScheme>
void bench_sign(benchmark::State& state, MakeScheme make) {
  auto scheme = make();
  Bytes m = to_bytes("bench");
  std::size_t signer = 0;
  // Find a signer that can sign (OWF sortition).
  while (scheme->sign(signer, m).empty() && signer + 1 < scheme->signer_count()) ++signer;
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->sign(signer, m));
  }
  bench::report_allocs(state, a0);
}

template <typename MakeScheme>
void bench_aggregate(benchmark::State& state, MakeScheme make) {
  auto scheme = make();
  Bytes m = to_bytes("bench");
  auto sigs = all_signatures(*scheme, m);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->aggregate(m, sigs));
  }
  bench::report_allocs(state, a0);
  state.counters["base_sigs"] = static_cast<double>(sigs.size());
}

template <typename MakeScheme>
void bench_verify(benchmark::State& state, MakeScheme make) {
  auto scheme = make();
  Bytes m = to_bytes("bench");
  Bytes agg = scheme->aggregate(m, all_signatures(*scheme, m));
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->verify(m, agg));
  }
  bench::report_allocs(state, a0);
  state.counters["sig_bytes"] = static_cast<double>(agg.size());
}

void BM_OwfSign_Wots(benchmark::State& s) {
  bench_sign(s, [] { return owf_scheme(512, BaseSigBackend::kWots); });
}
void BM_OwfSign_Compact(benchmark::State& s) {
  bench_sign(s, [] { return owf_scheme(512, BaseSigBackend::kCompact); });
}
void BM_OwfAggregate_Compact(benchmark::State& s) {
  bench_aggregate(s, [] { return owf_scheme(512, BaseSigBackend::kCompact); });
}
void BM_OwfVerify_Compact(benchmark::State& s) {
  bench_verify(s, [] { return owf_scheme(512, BaseSigBackend::kCompact); });
}
void BM_OwfVerify_Wots(benchmark::State& s) {
  bench_verify(s, [] { return owf_scheme(256, BaseSigBackend::kWots); });
}
void BM_SnarkSign_Compact(benchmark::State& s) {
  bench_sign(s, [] { return snark_scheme(512, BaseSigBackend::kCompact); });
}
void BM_SnarkAggregate_Compact(benchmark::State& s) {
  bench_aggregate(s, [] { return snark_scheme(512, BaseSigBackend::kCompact); });
}
void BM_SnarkAggregate_Wots(benchmark::State& s) {
  bench_aggregate(s, [] { return snark_scheme(128, BaseSigBackend::kWots); });
}
void BM_SnarkVerify_Compact(benchmark::State& s) {
  bench_verify(s, [] { return snark_scheme(512, BaseSigBackend::kCompact); });
}

BENCHMARK(BM_OwfSign_Wots);
BENCHMARK(BM_OwfSign_Compact);
BENCHMARK(BM_OwfAggregate_Compact);
BENCHMARK(BM_OwfVerify_Compact);
BENCHMARK(BM_OwfVerify_Wots);
BENCHMARK(BM_SnarkSign_Compact);
BENCHMARK(BM_SnarkAggregate_Compact);
BENCHMARK(BM_SnarkAggregate_Wots);
BENCHMARK(BM_SnarkVerify_Compact);

void BM_PcdProveVerify(benchmark::State& state) {
  SnarkOracle oracle(13);
  auto prover = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  Bytes st = to_bytes("statement");
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    auto proof = prover.prove(st, {}, {});
    benchmark::DoNotOptimize(prover.verifier().verify(st, *proof));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_PcdProveVerify);

}  // namespace

int main(int argc, char** argv) {
  return srds::bench::run_micro_suite(argc, argv, "micro_srds");
}

// Shared main() for the google-benchmark micro suites: parse the repo-wide
// bench CLI first (bench::Args consumes its flags and compacts argv), hand
// the remainder to google-benchmark, and tee every run into a
// bench::Reporter so the suites emit BENCH_*.json like the figure binaries.
//
// Allocation accounting comes from obs/alloc_hooks.hpp: every micro binary
// links the srds_alloc_hooks OBJECT library (see bench/CMakeLists.txt), so
// the counting replacement operator new/delete is one strong definition per
// binary and report_allocs below can attach allocs/op next to ns/op.
// Allocation-free hot paths are a contract here (srds-lint rule P1), and
// the micro suites are where the contract is *measured* rather than
// pattern-matched.
//
// --repeats K maps onto google-benchmark's repetition machinery
// (--benchmark_repetitions=K with aggregates-only reporting): each captured
// row is then the median aggregate, carrying a "wall" block with the median
// ns/op and the stddev/median relative spread the bench-diff wall-metric
// gate consumes.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/alloc_hooks.hpp"

namespace srds::bench {

/// Attach allocs/op for the span since `before = alloc_ops()` as a user
/// counter: it lands in the console table and, via CapturingReporter, in
/// BENCH_*.json as allocs_per_op.
inline void report_allocs(benchmark::State& state, std::uint64_t before) {
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(alloc_ops() - before),
                         benchmark::Counter::kAvgIterations);
}

/// ConsoleReporter that also records each run into a Reporter row
/// {name, iterations, real/cpu ns per iteration, wall block, user
/// counters}. With repetitions, the captured row is the median aggregate
/// and its wall.spread_rel is stddev/median. --quiet suppresses the
/// console table, not the capture.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  CapturingReporter(Reporter& rep, std::size_t repeats)
      : rep_(rep), repeats_(repeats) {}

  bool ReportContext(const Context& ctx) override {
    if (quiet()) return true;
    return benchmark::ConsoleReporter::ReportContext(ctx);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    if (repeats_ > 1) {
      capture_aggregates(runs);
    } else {
      for (const Run& run : runs) {
        if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
        RepeatStats rs;
        rs.repeats = 1;
        rs.wall_ns_median = per_iter(run.real_accumulated_time, run);
        emit(run.benchmark_name(), run, rs);
      }
    }
    if (!quiet()) benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  static double per_iter(double accumulated_s, const Run& run) {
    const double iters =
        run.iterations ? static_cast<double>(run.iterations) : 1.0;
    return accumulated_s * 1e9 / iters;
  }

  // Aggregates of one repetition family arrive in a single ReportRuns call
  // (mean, median, stddev, cv); the row is built from the median, and the
  // stddev supplies the spread.
  void capture_aggregates(const std::vector<Run>& runs) {
    const Run* median = nullptr;
    double stddev_real_ns = 0;
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Aggregate || run.error_occurred) continue;
      if (run.aggregate_name == "median") median = &run;
      if (run.aggregate_name == "stddev") {
        stddev_real_ns = per_iter(run.real_accumulated_time, run);
      }
    }
    if (!median) return;
    RepeatStats rs;
    rs.repeats = repeats_;
    rs.wall_ns_median = per_iter(median->real_accumulated_time, *median);
    if (rs.wall_ns_median > 0) {
      rs.spread_rel = stddev_real_ns / rs.wall_ns_median;
    }
    emit(median->run_name.str(), *median, rs);
  }

  void emit(const std::string& name, const Run& run, RepeatStats rs) {
    obs::Json m = obs::Json::object();
    m.set("name", name);
    m.set("iterations", static_cast<long long>(run.iterations));
    m.set("real_ns_per_iter", per_iter(run.real_accumulated_time, run));
    m.set("cpu_ns_per_iter", per_iter(run.cpu_accumulated_time, run));
    for (const auto& [cname, counter] : run.counters) {
      if (cname == "allocs_per_op") {
        rs.allocs_per_op = static_cast<double>(counter);
        continue;
      }
      m.set("counter_" + cname, static_cast<double>(counter));
    }
    rs.attach(m);
    rep_.add_row(static_cast<double>(idx_++), std::move(m));
  }

  Reporter& rep_;
  std::size_t repeats_;
  std::size_t idx_ = 0;
};

inline int run_micro_suite(int argc, char** argv, const char* suite_name) {
  Args args = Args::parse(argc, argv);
  // Map --repeats K to google-benchmark repetitions with aggregates-only
  // reporting, so each benchmark contributes exactly one (median) row.
  std::vector<char*> xargv(argv, argv + argc);
  std::string reps_flag, aggregates_flag;
  if (args.repeats > 1) {
    reps_flag = "--benchmark_repetitions=" + std::to_string(args.repeats);
    aggregates_flag = "--benchmark_report_aggregates_only=true";
    xargv.push_back(reps_flag.data());
    xargv.push_back(aggregates_flag.data());
  }
  xargv.push_back(nullptr);
  int xargc = static_cast<int>(xargv.size()) - 1;
  benchmark::Initialize(&xargc, xargv.data());
  if (benchmark::ReportUnrecognizedArguments(xargc, xargv.data())) return 1;
  Reporter rep(suite_name);
  rep.set_param("repeats", static_cast<unsigned long long>(args.repeats));
  rep.set_param("alloc_hooks", obs::alloc_hooks_active());
  CapturingReporter console(rep, args.repeats);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  finish_report(rep, args);
  write_prof_artifact(args, suite_name);
  return 0;
}

}  // namespace srds::bench

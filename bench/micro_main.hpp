// Shared main() for the google-benchmark micro suites: parse the repo-wide
// bench CLI first (bench::Args consumes its flags and compacts argv), hand
// the remainder to google-benchmark, and tee every run into a
// bench::Reporter so the suites emit BENCH_*.json like the figure binaries.
//
// The header also replaces global operator new/delete with alloc-counting
// versions, so every micro suite can report allocs/op next to ns/op
// (report_allocs below): allocation-free hot paths are a contract here
// (srds-lint rule P1), and the micro suites are where the contract is
// *measured* rather than pattern-matched. Each micro binary includes this
// header in exactly one translation unit — replacement operator new must
// not be defined twice, or inline.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"

namespace srds::bench {

/// Allocations observed process-wide since startup (all threads).
inline std::atomic<std::uint64_t> g_alloc_ops{0};

inline std::uint64_t alloc_ops() { return g_alloc_ops.load(); }

/// Attach allocs/op for the span since `before = alloc_ops()` as a user
/// counter: it lands in the console table and, via CapturingReporter, in
/// BENCH_*.json as counter_allocs_per_op.
inline void report_allocs(benchmark::State& state, std::uint64_t before) {
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(alloc_ops() - before),
                         benchmark::Counter::kAvgIterations);
}

}  // namespace srds::bench

// Counting replacements. Default (seq_cst) ordering: the counter is bench
// harness bookkeeping, and an allocation dwarfs the fence anyway. The
// nothrow/aligned variants are not replaced — those allocations go
// uncounted, which no current suite exercises on a measured path.
// noinline keeps the malloc/free internals opaque at call sites: inlined,
// GCC's -Wmismatched-new-delete heuristic pairs the caller's `new` with
// the exposed `free` and misfires (and replacement allocation functions
// are not meant to inline in the first place).
#if defined(__GNUC__) || defined(__clang__)
#define SRDS_BENCH_NOINLINE __attribute__((noinline))
#else
#define SRDS_BENCH_NOINLINE
#endif

SRDS_BENCH_NOINLINE void* operator new(std::size_t sz) {
  srds::bench::g_alloc_ops.fetch_add(1);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
SRDS_BENCH_NOINLINE void* operator new[](std::size_t sz) { return operator new(sz); }
SRDS_BENCH_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
SRDS_BENCH_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
SRDS_BENCH_NOINLINE void operator delete(void* p, std::size_t) noexcept { std::free(p); }
SRDS_BENCH_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace srds::bench {

/// ConsoleReporter that also records each run into a Reporter row
/// {name, iterations, real/cpu ns per iteration, user counters}. --quiet
/// suppresses the console table, not the capture.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(Reporter& rep) : rep_(rep) {}

  bool ReportContext(const Context& ctx) override {
    if (quiet()) return true;
    return benchmark::ConsoleReporter::ReportContext(ctx);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::Json m = obs::Json::object();
      m.set("name", run.benchmark_name());
      m.set("iterations", static_cast<long long>(run.iterations));
      const double iters =
          run.iterations ? static_cast<double>(run.iterations) : 1.0;
      m.set("real_ns_per_iter", run.real_accumulated_time * 1e9 / iters);
      m.set("cpu_ns_per_iter", run.cpu_accumulated_time * 1e9 / iters);
      for (const auto& [cname, counter] : run.counters) {
        m.set("counter_" + cname, static_cast<double>(counter));
      }
      rep_.add_row(static_cast<double>(idx_++), std::move(m));
    }
    if (!quiet()) benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  Reporter& rep_;
  std::size_t idx_ = 0;
};

inline int run_micro_suite(int argc, char** argv, const char* suite_name) {
  Args args = Args::parse(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  Reporter rep(suite_name);
  CapturingReporter console(rep);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  finish_report(rep, args);
  return 0;
}

}  // namespace srds::bench

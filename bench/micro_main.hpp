// Shared main() for the google-benchmark micro suites: parse the repo-wide
// bench CLI first (bench::Args consumes its flags and compacts argv), hand
// the remainder to google-benchmark, and tee every run into a
// bench::Reporter so the suites emit BENCH_*.json like the figure binaries.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace srds::bench {

/// ConsoleReporter that also records each run into a Reporter row
/// {name, iterations, real/cpu ns per iteration, user counters}. --quiet
/// suppresses the console table, not the capture.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(Reporter& rep) : rep_(rep) {}

  bool ReportContext(const Context& ctx) override {
    if (quiet()) return true;
    return benchmark::ConsoleReporter::ReportContext(ctx);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::Json m = obs::Json::object();
      m.set("name", run.benchmark_name());
      m.set("iterations", static_cast<long long>(run.iterations));
      const double iters =
          run.iterations ? static_cast<double>(run.iterations) : 1.0;
      m.set("real_ns_per_iter", run.real_accumulated_time * 1e9 / iters);
      m.set("cpu_ns_per_iter", run.cpu_accumulated_time * 1e9 / iters);
      for (const auto& [cname, counter] : run.counters) {
        m.set("counter_" + cname, static_cast<double>(counter));
      }
      rep_.add_row(static_cast<double>(idx_++), std::move(m));
    }
    if (!quiet()) benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  Reporter& rep_;
  std::size_t idx_ = 0;
};

inline int run_micro_suite(int argc, char** argv, const char* suite_name) {
  Args args = Args::parse(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  Reporter rep(suite_name);
  CapturingReporter console(rep);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  finish_report(rep, args);
  return 0;
}

}  // namespace srds::bench

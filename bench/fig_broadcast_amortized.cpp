// Experiment "Cor 1.2(1)" — the broadcast-service corollary: ℓ one-bit
// broadcasts over one shared tree/PKI cost ℓ · polylog(n) · poly(κ) bits
// per party; the per-broadcast cost is flat in ℓ (no amortization debt) and
// polylog in n.
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::size_t n_fixed = args.n_or(256);
  const std::uint64_t seed = args.seed_or(77);

  Reporter rep("fig_broadcast_amortized");
  rep.set_param("n", n_fixed);
  rep.set_param("beta", 0.1);
  rep.set_param("seed", seed);

  print_header("Cor 1.2(1): max per-party bytes for ell broadcasts (n=" +
               std::to_string(n_fixed) + ", beta=0.1)");
  std::vector<int> widths{8, 18, 22, 12};
  print_row({"ell", "max bytes/party", "per-broadcast", "delivered"}, widths);

  for (std::size_t ell : {1u, 2u, 4u, 8u, 16u}) {
    obs::Ledger ledger;
    BroadcastRunConfig cfg;
    cfg.n = n_fixed;
    cfg.ell = ell;
    cfg.beta = 0.1;
    cfg.seed = seed;
    cfg.ledger = &ledger;
    BroadcastRunResult r;
    RepeatStats rs = timed_repeats(args.repeats, [&] { r = run_broadcast_service(cfg); });
    const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
    double total = static_cast<double>(pp.max);
    double delivered = static_cast<double>(r.delivered) / static_cast<double>(r.possible);
    print_row({std::to_string(ell), fmt_bytes(total),
               fmt_bytes(total / static_cast<double>(ell)),
               fmt(100.0 * delivered, 1) + "%"},
              widths);
    obs::Json m = obs::Json::object();
    m.set("sweep", "ell");
    m.set("max_bytes_per_party", pp.max);
    m.set("p50_bytes_per_party", pp.p50);
    m.set("per_broadcast_bytes", total / static_cast<double>(ell));
    m.set("delivered_fraction", delivered);
    m.set("agreement", r.agreement);
    rs.attach(m);
    rep.add_row(static_cast<double>(ell), std::move(m));
  }

  print_header("Per-broadcast cost vs n (ell=4, beta=0.1)");
  std::vector<int> w2{8, 22};
  print_row({"n", "per-broadcast/party"}, w2);
  std::vector<double> xs, ys;
  for (std::size_t n : args.sizes({128, 256, 512, 1024})) {
    obs::Ledger ledger;
    BroadcastRunConfig cfg;
    cfg.n = n;
    cfg.ell = 4;
    cfg.beta = 0.1;
    cfg.seed = seed + 1;
    cfg.ledger = &ledger;
    RepeatStats rs = timed_repeats(args.repeats, [&] { run_broadcast_service(cfg); });
    double per = static_cast<double>(ledger.stat(obs::LedgerField::kBytesTotal).max) / 4.0;
    xs.push_back(static_cast<double>(n));
    ys.push_back(per);
    print_row({std::to_string(n), fmt_bytes(per)}, w2);
    obs::Json m = obs::Json::object();
    m.set("sweep", "n");
    m.set("per_broadcast_bytes", per);
    rs.attach(m);
    rep.add_row(static_cast<double>(n), std::move(m));
  }
  rep.set_param("n_sweep_slope", loglog_slope(xs, ys));
  say("\ngrowth exponent in n: %.2f\n"
      "(expected: polylogarithmic — the committee Dolev-Strong/coin-toss factors\n"
      "are ~log^4 n, which fits as an exponent ~0.4-0.5 over this small range;\n"
      "contrast with exponent 1.0 for a naive Θ(n)-per-party broadcast flood)\n",
      loglog_slope(xs, ys));
  finish_report(rep, args);
  return 0;
}

// Experiment "Cor 1.2 service": throughput and amortized per-party cost of
// the long-lived BA service daemon (src/svc). One daemon per row serves ℓ
// one-bit requests over the deterministic loopback transport; pipelined rows
// run staggered instances (the whole point of the service), the sequential
// row forces one instance at a time (window = in-flight cap = 1). Headline
// metrics are round-based and deterministic — decisions per 1k simulator
// rounds, bytes per party per decision — so bench-diff can ratchet them;
// wall-clock throughput is reported under a *_wall key, which the ratchet
// skips as volatile.
//
// The gate this figure anchors: at ℓ=64 the pipelined service must retire
// decisions at ≥3x the sequential round rate (checked in-process for every
// swept n ≥ 256; exit 4 on failure), and the amortized budget — Corollary
// 1.2's ℓ·polylog(n) bits per party — holds under --strict-budgets.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "svc/service.hpp"
#include "svc/transport.hpp"

namespace {

using namespace srds;

struct ServiceOut {
  svc::ServiceStats stats;
  std::uint64_t max_bytes = 0;  // worst party, whole service lifetime
  std::uint64_t p50_bytes = 0;
  std::size_t agreed = 0;
  double wall_sec = 0;
  std::vector<obs::BudgetEval> evals;
};

ServiceOut run_service(std::size_t n, std::size_t ell, bool pipelined,
                       std::uint64_t seed, bool strict,
                       obs::RoundTracer* tracer = nullptr) {
  obs::Ledger ledger;
  svc::ServiceConfig cfg;
  cfg.n = n;
  cfg.beta = 0.1;
  cfg.seed = seed;
  // One client drives the service, so its window must cover the daemon's
  // in-flight cap for the pipeline to actually fill.
  cfg.session_window = pipelined ? cfg.max_inflight : 1;
  if (!pipelined) cfg.max_inflight = 1;
  cfg.ledger = &ledger;
  cfg.trace = tracer;
  cfg.strict_budgets = strict;
  svc::BaServiceDaemon daemon(std::move(cfg));

  svc::LoopbackTransport transport;
  daemon.add_listener(transport.listener());
  svc::ServiceClient client(transport.connect());
  client.open();

  ServiceOut out;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t submitted = 0, received = 0;
  for (std::size_t iter = 0; iter < 10000000 && received < ell; ++iter) {
    client.retry();
    while (submitted < ell && client.can_submit()) {
      client.submit(submitted % 3 != 0);
      ++submitted;
    }
    daemon.poll();
    daemon.step();
    client.poll();
    for (const auto& d : client.take_decisions()) {
      ++received;
      if (d.decision.agreement) ++out.agreed;
    }
  }
  client.close();
  daemon.shutdown();  // drains + audits; throws BudgetViolation under strict
  out.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                     .count();
  out.stats = daemon.stats();
  out.evals = daemon.audit();
  const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
  out.max_bytes = pp.max;
  out.p50_bytes = pp.p50;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::uint64_t seed = args.seed_or(2121);

  Reporter rep("fig_service");
  rep.set_param("beta", 0.1);
  rep.set_param("seed", seed);
  rep.set_param("ell_list", "1,8,64");

  bool speedup_ok = true;
  std::vector<int> widths{8, 8, 14, 10, 16, 18, 10};
  for (std::size_t n : args.sizes({256, 1024})) {
    print_header("Cor 1.2 service: decisions vs rounds at n=" + std::to_string(n) +
                 " (beta=0.1)");
    print_row({"mode", "ell", "rounds", "dec/1k rd", "bytes/party", "per decision",
               "agreed"},
              widths);

    std::size_t sequential_rounds = 0, pipelined_rounds = 0;
    struct Row {
      const char* mode;
      std::size_t ell;
      bool pipelined;
    };
    const Row rows[] = {{"pipe", 1, true},
                        {"pipe", 8, true},
                        {"pipe", 64, true},
                        {"seq", 64, false}};
    for (const Row& row : rows) {
      ServiceOut r;
      RepeatStats rs;
      try {
        rs = timed_repeats(args.repeats, [&] {
          r = run_service(n, row.ell, row.pipelined, seed, args.strict_budgets);
        });
      } catch (const BudgetViolation& v) {
        std::fprintf(stderr, "fig_service: %s\n", v.what());
        report_budget_findings(v.findings);
        return 3;
      }
      const double per_1k = r.stats.rounds != 0
                                ? 1000.0 * static_cast<double>(r.stats.decisions) /
                                      static_cast<double>(r.stats.rounds)
                                : 0.0;
      const double per_decision =
          static_cast<double>(r.max_bytes) / static_cast<double>(row.ell);
      print_row({row.mode, std::to_string(row.ell), std::to_string(r.stats.rounds),
                 fmt(per_1k, 1), fmt_bytes(static_cast<double>(r.max_bytes)),
                 fmt_bytes(per_decision),
                 std::to_string(r.agreed) + "/" + std::to_string(row.ell)},
                widths);

      if (row.pipelined && row.ell == 64) pipelined_rounds = r.stats.rounds;
      if (!row.pipelined) sequential_rounds = r.stats.rounds;

      obs::Json m = obs::Json::object();
      m.set("protocol", std::string(row.pipelined ? "pipelined" : "sequential") +
                            "@n=" + std::to_string(n));
      m.set("n", n);
      m.set("rounds", r.stats.rounds);
      m.set("decided_per_1k_rounds", per_1k);
      m.set("max_bytes_per_party", r.max_bytes);
      m.set("p50_bytes_per_party", r.p50_bytes);
      m.set("bytes_per_party_per_decision", per_decision);
      m.set("agreed_fraction",
            static_cast<double>(r.agreed) / static_cast<double>(row.ell));
      m.set("rejected_backpressure", r.stats.rejected_backpressure);
      m.set("decisions_per_sec_wall",
            r.wall_sec > 0 ? static_cast<double>(r.stats.decisions) / r.wall_sec : 0.0);
      m.set("budgets", obs::BudgetAuditor::to_json(r.evals));
      rs.attach(m);
      rep.add_row(static_cast<double>(row.ell), std::move(m));
    }

    if (pipelined_rounds != 0 && sequential_rounds != 0) {
      const double speedup = static_cast<double>(sequential_rounds) /
                             static_cast<double>(pipelined_rounds);
      rep.set_param("speedup_n" + std::to_string(n), speedup);
      say("\npipelining speedup at ell=64: %.1fx fewer rounds than sequential\n",
          speedup);
      // The staggered pipeline is the service's reason to exist: at real
      // sizes it must beat one-at-a-time by a wide margin.
      if (n >= 256 && speedup < 3.0) {
        std::fprintf(stderr,
                     "fig_service: pipelined speedup %.2fx < 3x at n=%zu ell=64\n",
                     speedup, n);
        speedup_ok = false;
      }
    }
  }

  // Artifact leg: one traced pipelined run, exporting the chrome timeline
  // (with the prof flame track when --prof is on) and the standalone prof
  // snapshot — the observability artifacts CI uploads.
  if (args.json_enabled()) {
    obs::RoundTracer tracer;
    try {
      run_service(256, 8, true, seed, false, &tracer);
    } catch (const BudgetViolation&) {
      // Non-strict run; unreachable, but never fail the figure over the
      // artifact leg.
    }
    const std::string trace_path = args.json_out + "/TRACE_fig_service.json";
    if (obs::write_text_file(trace_path, tracer.chrome_trace().dump(-1) + "\n")) {
      say("[trace] %s\n", trace_path.c_str());
    }
    write_prof_artifact(args, "fig_service");
  }

  finish_report(rep, args);
  return speedup_ok ? 0 : 4;
}

// Experiment "Cor 1.2(2)" — scalable MPC from (simulated) FHE: computing
// the sum of all n inputs over the communication tree with total
// communication n·polylog(n)·poly(κ). The series shows total bytes vs n
// with the fitted exponent (quasi-linear, vs 2.0 for naive all-to-all MPC)
// and per-party max bytes (polylog-flat).
#include <cstdio>

#include "bench_util.hpp"
#include "mpc/scalable_mpc.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::uint64_t seed = args.seed_or(88);

  Reporter rep("fig_mpc_scaling");
  rep.set_param("beta", 0.15);
  rep.set_param("seed", seed);

  print_header("Cor 1.2(2): tree-MPC (sum of n inputs), beta=0.15");
  std::vector<int> widths{8, 16, 18, 14, 12};
  print_row({"n", "total comm", "max bytes/party", "correct sum", "decided"}, widths);

  std::vector<double> xs, total_ys, max_ys;
  for (std::size_t n : args.sizes({64, 128, 256, 512, 1024})) {
    obs::Ledger ledger;
    MpcRunConfig cfg;
    cfg.n = n;
    cfg.beta = 0.15;
    cfg.seed = seed;
    cfg.trace = &ledger;
    MpcRunResult r;
    RepeatStats rs = timed_repeats(args.repeats, [&] { r = run_scalable_sum_mpc(cfg); });
    const obs::PartyStat pp = ledger.stat(obs::LedgerField::kBytesTotal);
    xs.push_back(static_cast<double>(n));
    total_ys.push_back(static_cast<double>(r.stats.total_bytes()));
    max_ys.push_back(static_cast<double>(pp.max));
    bool sum_ok = r.output.has_value() && *r.output <= r.expected_sum &&
                  *r.output * 10 >= r.expected_sum * 9;
    double decided = static_cast<double>(r.decided) / static_cast<double>(r.honest);
    print_row({std::to_string(n),
               fmt_bytes(static_cast<double>(r.stats.total_bytes())),
               fmt_bytes(static_cast<double>(pp.max)),
               sum_ok ? "yes" : "NO", fmt(100.0 * decided, 1) + "%"},
              widths);

    obs::Json m = obs::Json::object();
    m.set("total_comm_bytes", r.stats.total_bytes());
    m.set("max_bytes_per_party", pp.max);
    m.set("p50_bytes_per_party", pp.p50);
    m.set("sum_correct", sum_ok);
    m.set("decided_fraction", decided);
    rs.attach(m);
    rep.add_row(static_cast<double>(n), std::move(m));
  }
  rep.set_param("total_comm_slope", loglog_slope(xs, total_ys));
  rep.set_param("max_per_party_slope", loglog_slope(xs, max_ys));
  say("\ntotal-comm exponent: %.2f (naive MPC would be 2.0; the corollary\n"
      "promises quasi-linear)   max-per-party exponent: %.2f (polylog-flat)\n",
      loglog_slope(xs, total_ys), loglog_slope(xs, max_ys));
  finish_report(rep, args);
  return 0;
}

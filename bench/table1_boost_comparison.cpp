// Experiment "Table 1" — comparison of protocols boosting almost-everywhere
// agreement to full agreement (the paper's only quantitative artifact).
//
// Each row executes the full protocol on the synchronous simulator at a
// fixed n with β = 0.2 fail-silent corruption, and reports the *measured*
// analogues of the paper's columns: rounds, max communication per party
// (sent+received bytes over honest parties), communication locality
// (max distinct peers), plus the declared setup/assumption columns.
//
// Every run is traced (obs::RoundTracer), so the BENCH_*.json artifact
// carries a per-phase byte/round breakdown per row, and the π_ba/snark row
// additionally exports a chrome://tracing timeline (TRACE_pi_ba.json).
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"

namespace {

struct Row {
  srds::BoostProtocol protocol;
  const char* paper_row;
  const char* setup;
  const char* assumptions;
};

constexpr Row kRows[] = {
    {srds::BoostProtocol::kNaive, "folklore all-to-all", "pki", "sig"},
    {srds::BoostProtocol::kMultisig, "BGT'13 [13]", "pki", "multisig (owf)"},
    {srds::BoostProtocol::kSampling, "KS'11/KLST'11 [45,47]", "-", "-"},
    {srds::BoostProtocol::kStar, "ACD+'19 [1] (star)", "trusted-pki", "sig"},
    {srds::BoostProtocol::kPiBaOwf, "This work (OWF-SRDS)", "trusted-pki", "owf"},
    {srds::BoostProtocol::kPiBaSnark, "This work (SNARK-SRDS)", "pki+crs", "snarks*+crh"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::size_t n = args.n_or(512);
  const double beta = 0.2;
  const std::uint64_t seed = args.seed_or(42);

  Reporter rep("table1_boost_comparison");
  rep.set_param("n", n);
  rep.set_param("beta", beta);
  rep.set_param("seed", seed);

  print_header("Table 1 (measured): almost-everywhere -> everywhere boost step, n=" +
               std::to_string(n) + ", beta=0.2");
  say("(boost-phase costs only; the shared f_ba+f_ct+f_ae-comm front end is the\n"
      " same for every row and excluded, exactly as in the paper's comparison)\n\n");
  std::vector<int> widths{26, 8, 16, 12, 14, 13, 16, 10};
  print_row({"protocol", "rounds", "max comm/party", "locality", "total comm",
             "setup", "assumptions", "decided"},
            widths);

  double row_idx = 0;
  for (const Row& row : kRows) {
    obs::RoundTracer tracer;
    obs::Ledger ledger;
    BaRunConfig cfg;
    cfg.n = n;
    cfg.beta = beta;
    cfg.seed = seed;
    cfg.protocol = row.protocol;
    cfg.trace = &tracer;
    cfg.ledger = &ledger;
    cfg.strict_budgets = args.strict_budgets;
    BaRunResult r;
    RepeatStats rs;
    try {
      rs = timed_repeats(args.repeats, [&] {
        tracer.clear();
        r = run_ba(cfg);
      });
    } catch (const BudgetViolation& v) {
      std::fprintf(stderr, "%s\n", v.what());
      report_budget_findings(v.findings);
      return 3;
    }
    // Per-party numbers now come from the shared ledger (identical to the
    // old NetworkStats walk on a fault-free run, plus distribution stats).
    const obs::PartyStat boost_pp =
        ledger.stat(obs::LedgerField::kBytesTotal, ledger.phase_index("boost"));
    report_budget_findings(r.budget_evals);
    print_row({row.paper_row, std::to_string(r.boost_rounds),
               fmt_bytes(static_cast<double>(boost_pp.max)),
               std::to_string(r.boost_stats.max_locality()),
               fmt_bytes(static_cast<double>(r.boost_stats.total_bytes())), row.setup,
               row.assumptions, fmt(100.0 * r.decided_fraction(), 1) + "%"},
              widths);
    if (!r.agreement) std::printf("  !! agreement violated for %s\n", row.paper_row);

    obs::Json m = obs::Json::object();
    m.set("protocol", protocol_name(row.protocol));
    m.set("paper_row", row.paper_row);
    m.set("boost_rounds", r.boost_rounds);
    m.set("rounds", r.rounds);
    m.set("max_comm_per_party_bytes", boost_pp.max);
    m.set("p50_comm_per_party_bytes", boost_pp.p50);
    m.set("p90_comm_per_party_bytes", boost_pp.p90);
    m.set("locality", r.boost_stats.max_locality());
    m.set("total_comm_bytes", r.boost_stats.total_bytes());
    m.set("decided_fraction", r.decided_fraction());
    m.set("agreement", r.agreement);
    m.set("setup", row.setup);
    m.set("assumptions", row.assumptions);
    m.set("phases", phase_metrics(tracer));
    m.set("per_party", perparty_metrics(ledger));
    m.set("budgets", obs::BudgetAuditor::to_json(r.budget_evals));
    rs.attach(m);
    rep.add_row(row_idx, std::move(m));
    row_idx += 1;

    // Timeline artifact for the headline protocol: load in chrome://tracing.
    if (row.protocol == BoostProtocol::kPiBaSnark && args.json_enabled()) {
      std::string path = args.json_out + "/TRACE_pi_ba.json";
      if (obs::write_text_file(path, tracer.chrome_trace().dump(-1) + "\n")) {
        say("  [trace] %s\n", path.c_str());
      }
    }
  }

  say("\nReading guide: this snapshot fixes n=%zu, where the paper's asymptotic\n"
      "separation (Õ(1) for the SRDS rows vs Õ(√n) for sampling vs Õ(n) for\n"
      "naive/BGT'13/star) lives in the GROWTH, not yet in the absolute bytes —\n"
      "polylog committees carry chunky constants at this scale. See Fig A for\n"
      "the slopes (pi_ba ~0.2, naive/star ~1.0) and the measured crossovers:\n"
      "pi_ba/snark already beats BGT'13 at n=2048 and overtakes naive ~n=4k.\n"
      "Locality of naive/star is pinned at n-1; the SRDS rows stay well below.\n"
      "The setup/assumption columns are the paper's, satisfied by construction.\n",
      n);
  finish_report(rep, args);
  return 0;
}

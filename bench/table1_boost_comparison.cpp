// Experiment "Table 1" — comparison of protocols boosting almost-everywhere
// agreement to full agreement (the paper's only quantitative artifact).
//
// Each row executes the full protocol on the synchronous simulator at a
// fixed n with β = 0.2 fail-silent corruption, and reports the *measured*
// analogues of the paper's columns: rounds, max communication per party
// (sent+received bytes over honest parties), communication locality
// (max distinct peers), plus the declared setup/assumption columns.
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"

namespace {

struct Row {
  srds::BoostProtocol protocol;
  const char* paper_row;
  const char* setup;
  const char* assumptions;
};

constexpr Row kRows[] = {
    {srds::BoostProtocol::kNaive, "folklore all-to-all", "pki", "sig"},
    {srds::BoostProtocol::kMultisig, "BGT'13 [13]", "pki", "multisig (owf)"},
    {srds::BoostProtocol::kSampling, "KS'11/KLST'11 [45,47]", "-", "-"},
    {srds::BoostProtocol::kStar, "ACD+'19 [1] (star)", "trusted-pki", "sig"},
    {srds::BoostProtocol::kPiBaOwf, "This work (OWF-SRDS)", "trusted-pki", "owf"},
    {srds::BoostProtocol::kPiBaSnark, "This work (SNARK-SRDS)", "pki+crs", "snarks*+crh"},
};

}  // namespace

int main() {
  using namespace srds;
  using namespace srds::bench;

  const std::size_t n = 512;
  const double beta = 0.2;

  print_header(
      "Table 1 (measured): almost-everywhere -> everywhere boost step, n=512, beta=0.2");
  std::printf("(boost-phase costs only; the shared f_ba+f_ct+f_ae-comm front end is the\n"
              " same for every row and excluded, exactly as in the paper's comparison)\n\n");
  std::vector<int> widths{26, 8, 16, 12, 14, 13, 16, 10};
  print_row({"protocol", "rounds", "max comm/party", "locality", "total comm",
             "setup", "assumptions", "decided"},
            widths);

  for (const Row& row : kRows) {
    BaRunConfig cfg;
    cfg.n = n;
    cfg.beta = beta;
    cfg.seed = 42;
    cfg.protocol = row.protocol;
    auto r = run_ba(cfg);
    print_row({row.paper_row, std::to_string(r.boost_rounds),
               fmt_bytes(static_cast<double>(r.boost_stats.max_bytes_total())),
               std::to_string(r.boost_stats.max_locality()),
               fmt_bytes(static_cast<double>(r.boost_stats.total_bytes())), row.setup,
               row.assumptions, fmt(100.0 * r.decided_fraction(), 1) + "%"},
              widths);
    if (!r.agreement) std::printf("  !! agreement violated for %s\n", row.paper_row);
  }

  std::printf(
      "\nReading guide: this snapshot fixes n=512, where the paper's asymptotic\n"
      "separation (Õ(1) for the SRDS rows vs Õ(√n) for sampling vs Õ(n) for\n"
      "naive/BGT'13/star) lives in the GROWTH, not yet in the absolute bytes —\n"
      "polylog committees carry chunky constants at this scale. See Fig A for\n"
      "the slopes (pi_ba ~0.2, naive/star ~1.0) and the measured crossovers:\n"
      "pi_ba/snark already beats BGT'13 at n=2048 and overtakes naive ~n=4k.\n"
      "Locality of naive/star is pinned at n-1; the SRDS rows stay well below.\n"
      "The setup/assumption columns are the paper's, satisfied by construction.\n");
  return 0;
}

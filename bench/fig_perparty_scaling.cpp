// Experiment "Fig A" — the headline scaling series: max per-party
// communication against n for every protocol row, with fitted log-log
// growth exponents. The paper's claim is a slope near 1 for the Θ(n)
// boosters, near 0.5 for sampling, and polylog-flat (slope -> 0, up to
// log-factor wiggle) for the two SRDS-based π_ba variants.
#include <cstdio>
#include <map>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main() {
  using namespace srds;
  using namespace srds::bench;

  const std::vector<std::size_t> sizes{64, 128, 256, 512, 1024, 2048};
  const std::vector<std::pair<BoostProtocol, const char*>> protocols{
      {BoostProtocol::kNaive, "naive"},
      {BoostProtocol::kMultisig, "bgt13-multisig"},
      {BoostProtocol::kStar, "acd19-star"},
      {BoostProtocol::kSampling, "ks11-sampling"},
      {BoostProtocol::kPiBaOwf, "pi_ba/owf"},
      {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
  };

  print_header("Fig A: boost-phase max per-party communication (bytes) vs n  [beta=0.2]");
  std::vector<int> widths{18};
  std::vector<std::string> head{"protocol"};
  for (auto n : sizes) {
    head.push_back("n=" + std::to_string(n));
    widths.push_back(12);
  }
  head.push_back("slope");
  widths.push_back(8);
  print_row(head, widths);

  for (auto [proto, label] : protocols) {
    std::vector<std::string> cells{label};
    std::vector<double> xs, ys;
    for (auto n : sizes) {
      BaRunConfig cfg;
      cfg.n = n;
      cfg.beta = 0.2;
      cfg.seed = 101;
      cfg.protocol = proto;
      auto r = run_ba(cfg);
      double v = static_cast<double>(r.boost_stats.max_bytes_total());
      xs.push_back(static_cast<double>(n));
      ys.push_back(v);
      cells.push_back(fmt_bytes(v));
    }
    cells.push_back(fmt(loglog_slope(xs, ys), 2));
    print_row(cells, widths);
  }

  std::printf(
      "\nExpected shape: slope ~1 for naive/star (and for bgt13 asymptotically --\n"
      "its n-bit bitmap term only starts dominating the committee constants near\n"
      "the top of this sweep), ~0.7 for sampling, and well below 0.5 for both\n"
      "pi_ba rows (polylog wiggle only: the non-monotone cells are real, they\n"
      "track ceil(log n) jumps in committee size/tree height). Measured\n"
      "crossover: pi_ba/snark undercuts bgt13-multisig by n=2048 and\n"
      "extrapolates past naive around n~4k; the flat pi_ba rows win against\n"
      "every Theta(n) row from there on out.\n");
  return 0;
}

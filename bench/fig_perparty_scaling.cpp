// Experiment "Fig A" — the headline scaling series: max per-party
// communication against n for every protocol row, with fitted log-log
// growth exponents. The paper's claim is a slope near 1 for the Θ(n)
// boosters, near 0.5 for sampling, and polylog-flat (slope -> 0, up to
// log-factor wiggle) for the two SRDS-based π_ba variants.
//
// Each (protocol, n) run is traced, so the JSON artifact records a
// per-phase byte/round breakdown next to the headline number.
#include <cstdio>
#include <map>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::vector<std::size_t> sizes = args.sizes({64, 128, 256, 512, 1024, 2048});
  const std::uint64_t seed = args.seed_or(101);
  const std::vector<std::pair<BoostProtocol, const char*>> protocols{
      {BoostProtocol::kNaive, "naive"},
      {BoostProtocol::kMultisig, "bgt13-multisig"},
      {BoostProtocol::kStar, "acd19-star"},
      {BoostProtocol::kSampling, "ks11-sampling"},
      {BoostProtocol::kPiBaOwf, "pi_ba/owf"},
      {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
  };

  Reporter rep("fig_perparty_scaling");
  rep.set_param("beta", 0.2);
  rep.set_param("seed", seed);
  {
    obs::Json js = obs::Json::array();
    for (auto n : sizes) js.push_back(n);
    rep.set_param("sizes", std::move(js));
  }

  print_header("Fig A: boost-phase max per-party communication (bytes) vs n  [beta=0.2]");
  std::vector<int> widths{18};
  std::vector<std::string> head{"protocol"};
  for (auto n : sizes) {
    head.push_back("n=" + std::to_string(n));
    widths.push_back(12);
  }
  head.push_back("slope");
  widths.push_back(8);
  print_row(head, widths);

  // One artifact row per n; each row's metrics nest the per-protocol
  // results (headline bytes + traced phase breakdown).
  std::vector<obs::Json> per_n;
  per_n.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) per_n.push_back(obs::Json::object());

  for (auto [proto, label] : protocols) {
    std::vector<std::string> cells{label};
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::size_t n = sizes[i];
      obs::RoundTracer tracer;
      obs::Ledger ledger;
      BaRunConfig cfg;
      cfg.n = n;
      cfg.beta = 0.2;
      cfg.seed = seed;
      cfg.protocol = proto;
      cfg.trace = &tracer;
      cfg.ledger = &ledger;
      cfg.strict_budgets = args.strict_budgets;
      BaRunResult r;
      RepeatStats rs;
      try {
        rs = timed_repeats(args.repeats, [&] {
          tracer.clear();
          r = run_ba(cfg);
        });
      } catch (const BudgetViolation& v) {
        std::fprintf(stderr, "%s\n", v.what());
        report_budget_findings(v.findings);
        return 3;
      }
      report_budget_findings(r.budget_evals);
      const obs::PartyStat boost_pp =
          ledger.stat(obs::LedgerField::kBytesTotal, ledger.phase_index("boost"));
      double v = static_cast<double>(boost_pp.max);
      xs.push_back(static_cast<double>(n));
      ys.push_back(v);
      cells.push_back(fmt_bytes(v));

      obs::Json m = obs::Json::object();
      m.set("max_comm_per_party_bytes", boost_pp.max);
      m.set("p50_comm_per_party_bytes", boost_pp.p50);
      m.set("p90_comm_per_party_bytes", boost_pp.p90);
      m.set("total_comm_bytes", r.boost_stats.total_bytes());
      m.set("locality", r.boost_stats.max_locality());
      m.set("rounds", r.rounds);
      m.set("decided_fraction", r.decided_fraction());
      m.set("phases", phase_metrics(tracer));
      m.set("per_party", perparty_metrics(ledger));
      m.set("budgets", obs::BudgetAuditor::to_json(r.budget_evals));
      rs.attach(m);
      per_n[i].set(label, std::move(m));
    }
    const double slope = loglog_slope(xs, ys);
    cells.push_back(fmt(slope, 2));
    print_row(cells, widths);
    for (auto& row : per_n) {
      if (auto* entry = row.find(label)) entry->set("slope", slope);
    }
  }

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rep.add_row(static_cast<double>(sizes[i]), std::move(per_n[i]));
  }

  say("\nExpected shape: slope ~1 for naive/star (and for bgt13 asymptotically --\n"
      "its n-bit bitmap term only starts dominating the committee constants near\n"
      "the top of this sweep), ~0.7 for sampling, and well below 0.5 for both\n"
      "pi_ba rows (polylog wiggle only: the non-monotone cells are real, they\n"
      "track ceil(log n) jumps in committee size/tree height). Measured\n"
      "crossover: pi_ba/snark undercuts bgt13-multisig by n=2048 and\n"
      "extrapolates past naive around n~4k; the flat pi_ba rows win against\n"
      "every Theta(n) row from there on out.\n");
  finish_report(rep, args);
  return 0;
}

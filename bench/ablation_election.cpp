// Ablation — why committees must be *elected*, not derived from public
// setup (the paper's §1.1 "trivialized settings" caveat): against an
// adversary that corrupts AFTER seeing the public setup, CRS-derived
// committees are a sitting target (it reads the supreme committee off the
// CRS and corrupts exactly those parties), while interactively elected
// committees stay honest-majority because the election randomness does not
// exist until after the corruption set is fixed.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "tree/comm_tree.hpp"
#include "tree/election.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::size_t n = args.n_or(192);
  const double beta = 0.25;
  const std::size_t budget = static_cast<std::size_t>(beta * n);
  const std::size_t trials = 10;
  const std::uint64_t seed = args.seed_or(40);

  Reporter rep("ablation_election");
  rep.set_param("n", n);
  rep.set_param("beta", beta);
  rep.set_param("seed", seed);
  rep.set_param("trials", trials);

  print_header("Ablation: supreme-committee corrupt fraction, setup-aware adversary (n=192, beta=0.25)");
  std::vector<int> widths{34, 24, 22};
  print_row({"committee source", "assignment-blind adv", "setup-aware adv"}, widths);

  // --- CRS-derived committees (CommTree seeded from public randomness) ---
  double crs_blind = 0, crs_aware = 0;
  RepeatStats crs_rs = timed_repeats(args.repeats, [&] {
    crs_blind = 0;
    crs_aware = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
    CommTree tree(TreeParams::scaled(n), seed + trial);
    const auto& committee = tree.supreme_committee();
    // Blind adversary: random corruption.
    Rng rng(90 + trial);
    std::vector<bool> corrupt(n, false);
    for (auto idx : rng.subset(n, budget)) corrupt[idx] = true;
    std::size_t bad = 0;
    for (PartyId p : committee) bad += corrupt[p] ? 1 : 0;
    crs_blind += static_cast<double>(bad) / static_cast<double>(committee.size());
    // Setup-aware adversary: reads the committee off the CRS, corrupts it.
    std::size_t bad_aware = std::min(budget, committee.size());
    crs_aware += static_cast<double>(bad_aware) / static_cast<double>(committee.size());
    }
  });

  // --- interactively elected committees ---
  double el_blind = 0, el_aware = 0;
  RepeatStats el_rs = timed_repeats(args.repeats, [&] {
    el_blind = 0;
    el_aware = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(140 + trial);
    std::vector<bool> corrupt(n, false);
    for (auto idx : rng.subset(n, budget)) corrupt[idx] = true;
    ElectionParams params;
    params.final_size = 16;
    // Both adversaries corrupt *before* the election runs — the setup-aware
    // one gains nothing because there is no assignment to read yet. (The
    // same run therefore measures both columns.)
    auto r = run_committee_election(n, corrupt, params, 990 + trial);
    el_blind += r.committee_corrupt_fraction;
    el_aware += r.committee_corrupt_fraction;
    }
  });

  print_row({"CRS-derived (CommTree seed)", fmt(100.0 * crs_blind / trials, 1) + "%",
             fmt(100.0 * crs_aware / trials, 1) + "%"},
            widths);
  print_row({"interactive election (KSSV-lite)", fmt(100.0 * el_blind / trials, 1) + "%",
             fmt(100.0 * el_aware / trials, 1) + "%"},
            widths);

  {
    obs::Json m = obs::Json::object();
    m.set("source", "crs-derived");
    m.set("blind_corrupt_fraction", crs_blind / trials);
    m.set("aware_corrupt_fraction", crs_aware / trials);
    crs_rs.attach(m);
    rep.add_row(0, std::move(m));
  }
  {
    obs::Json m = obs::Json::object();
    m.set("source", "interactive-election");
    m.set("blind_corrupt_fraction", el_blind / trials);
    m.set("aware_corrupt_fraction", el_aware / trials);
    el_rs.attach(m);
    rep.add_row(1, std::move(m));
  }

  ElectionParams params;
  params.final_size = 16;
  ElectionResult cost;
  RepeatStats cost_rs = timed_repeats(args.repeats, [&] {
    cost = run_committee_election(512, std::vector<bool>(512, false), params, 5);
  });
  say("\nelection cost at n=512: %zu rounds, max %s per party, locality %zu\n",
      cost.rounds, fmt_bytes(static_cast<double>(cost.stats.max_bytes_total())).c_str(),
      cost.stats.max_locality());
  {
    obs::Json m = obs::Json::object();
    m.set("source", "election-cost@n=512");
    m.set("rounds", cost.rounds);
    m.set("max_bytes_per_party", cost.stats.max_bytes_total());
    m.set("locality", cost.stats.max_locality());
    cost_rs.attach(m);
    rep.add_row(2, std::move(m));
  }
  say("\nExpected shape: the setup-aware column hits 100%% (committee > corruption\n"
      "budget notwithstanding) for CRS-derived committees — full compromise — but\n"
      "stays near beta for elected committees. This is why f_ae-comm must be\n"
      "realized interactively (paper §1.1) and why this repository evaluates the\n"
      "CRS-seeded tree only under assignment-independent corruption.\n");
  finish_report(rep, args);
  return 0;
}

// Experiment "Fig C" — Def. 2.3 property (4): the fraction of leaves with a
// good path to the root, against the corruption rate β, for both goodness
// rules, compared with the paper's asymptotic bound 1 - 3/log n.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "tree/comm_tree.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::vector<std::size_t> sizes = args.sizes({256, 1024, 4096});
  const std::uint64_t seed = args.seed_or(31337);
  const std::vector<double> betas{0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const std::size_t trials = 20;

  Reporter rep("fig_tree_quality");
  rep.set_param("seed", seed);
  rep.set_param("trials", trials);

  for (auto rule : {GoodnessRule::kOneThird, GoodnessRule::kMajority}) {
    const char* rule_name =
        rule == GoodnessRule::kOneThird ? "one-third" : "majority";
    print_header(std::string("Fig C: good-path leaf fraction (rule: ") +
                 (rule == GoodnessRule::kOneThird ? "<1/3 corrupt, Def. 2.3"
                                                  : "<1/2 corrupt, voting") +
                 ")");
    std::vector<int> widths{8};
    std::vector<std::string> head{"n"};
    for (double b : betas) {
      head.push_back("b=" + fmt(b, 2));
      widths.push_back(9);
    }
    head.push_back("1-3/log n");
    widths.push_back(11);
    head.push_back("root good");
    widths.push_back(10);
    print_row(head, widths);

    for (auto n : sizes) {
      std::vector<std::string> cells{std::to_string(n)};
      obs::Json by_beta = obs::Json::object();
      std::size_t root_good_all = 0, runs = 0;
      RepeatStats rs = timed_repeats(args.repeats, [&] {
        by_beta = obs::Json::object();
        root_good_all = 0;
        runs = 0;
        cells.resize(1);
        for (double beta : betas) {
          double sum = 0;
          for (std::size_t trial = 0; trial < trials; ++trial) {
            CommTree tree(TreeParams::scaled(n), seed + trial);
            Rng rng(777 * n + trial + static_cast<std::size_t>(beta * 100));
            std::vector<bool> corrupt(n, false);
            for (auto idx : rng.subset(
                     n, static_cast<std::size_t>(beta * static_cast<double>(n)))) {
              corrupt[idx] = true;
            }
            auto g = tree.analyze(corrupt, rule);
            sum += g.good_leaf_fraction;
            root_good_all += g.root_good ? 1 : 0;
            ++runs;
          }
          cells.push_back(fmt(sum / trials, 3));
          by_beta.set(fmt(beta, 2), sum / trials);
        }
      });
      double bound = 1.0 - 3.0 / std::log2(static_cast<double>(n));
      cells.push_back(fmt(bound, 3));
      cells.push_back(fmt(100.0 * static_cast<double>(root_good_all) /
                              static_cast<double>(runs),
                          1) +
                      "%");
      print_row(cells, widths);

      obs::Json m = obs::Json::object();
      m.set("rule", rule_name);
      m.set("good_leaf_fraction_by_beta", std::move(by_beta));
      m.set("paper_bound", bound);
      m.set("root_good_fraction",
            static_cast<double>(root_good_all) / static_cast<double>(runs));
      rs.attach(m);
      rep.add_row(static_cast<double>(n), std::move(m));
    }
  }

  say("\nExpected shape: under the majority rule the fraction stays near 1 well\n"
      "past beta=0.25; under the paper's 1/3 rule it matches or beats 1-3/log n\n"
      "for beta <= 0.15 and degrades gracefully toward beta=1/3 (the scaled\n"
      "committees are ~2 log n, not log^3 n — see DESIGN.md S5).\n");
  finish_report(rep, args);
  return 0;
}

// Micro-benchmarks for the cryptographic substrate (google-benchmark):
// SHA-256, HMAC, Merkle trees, Lamport and WOTS one-time signatures,
// Shamir sharing. These put concrete per-operation costs under the
// protocol-level results.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "micro_main.hpp"
#include "consensus/shamir.hpp"
#include "crypto/hmac.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"

namespace {

using namespace srds;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  bench::report_allocs(state, a0);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.bytes(32);
  Bytes data = rng.bytes(256);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_HmacSha256);

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(3);
  std::vector<Digest> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_MerkleBuild)->Arg(256)->Arg(4096);

void BM_MerklePathVerify(benchmark::State& state) {
  Rng rng(4);
  std::vector<Digest> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  MerkleTree tree(leaves);
  auto path = tree.path(static_cast<std::uint64_t>(state.range(0) / 2));
  Digest leaf = leaves[static_cast<std::size_t>(state.range(0) / 2)];
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MerkleTree::verify(tree.root(), leaf, path, static_cast<std::size_t>(state.range(0))));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_MerklePathVerify)->Arg(4096);

void BM_LamportKeygen(benchmark::State& state) {
  Rng rng(5);
  Bytes seed = rng.bytes(32);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lamport_keygen(seed));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_LamportKeygen);

void BM_LamportSignVerify(benchmark::State& state) {
  auto kp = lamport_keygen(Rng(6).bytes(32));
  Bytes m = to_bytes("bench message");
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    auto sig = lamport_sign(kp, m);
    benchmark::DoNotOptimize(lamport_verify(kp.verification_key, m, sig));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_LamportSignVerify);

void BM_WotsKeygen(benchmark::State& state) {
  Rng rng(7);
  Bytes seed = rng.bytes(32);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wots_keygen(seed));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_WotsKeygen);

void BM_WotsSign(benchmark::State& state) {
  auto kp = wots_keygen(Rng(8).bytes(32));
  Bytes m = to_bytes("bench message");
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wots_sign(kp, m));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  auto kp = wots_keygen(Rng(9).bytes(32));
  Bytes m = to_bytes("bench message");
  auto sig = wots_sign(kp, m);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wots_verify(kp.verification_key, m, sig));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_WotsVerify);

void BM_ShamirShare(benchmark::State& state) {
  Rng rng(10);
  std::size_t c = static_cast<std::size_t>(state.range(0));
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_share(123456789, c / 3, c, rng));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_ShamirShare)->Arg(16)->Arg(64);

void BM_ShamirReconstruct(benchmark::State& state) {
  Rng rng(11);
  std::size_t c = static_cast<std::size_t>(state.range(0));
  auto shares = shamir_share(987654321, c / 3, c, rng);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_reconstruct(shares, c / 3));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_ShamirReconstruct)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return srds::bench::run_micro_suite(argc, argv, "micro_crypto");
}

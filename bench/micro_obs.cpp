// Micro-benchmarks for the observability plane's hot path: Counter::inc,
// Gauge::set and Histogram::record (lock-free per-bucket atomics since the
// sharded-bucket conversion — the contended variant is the case the old
// per-histogram mutex serialized), registry handle lookup, and
// Reporter::add_row. Every benchmark reports allocs/op next to ns/op via
// the counting operator new in micro_main.hpp: the record/inc/set paths
// must stay at 0.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "micro_main.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace {

using namespace srds;

void BM_CounterInc(benchmark::State& state) {
  obs::Counter c;
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) c.inc();
  bench::report_allocs(state, a0);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge g;
  double v = 0.0;
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) g.set(v += 1.5);
  bench::report_allocs(state, a0);
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  std::uint64_t v = 1;
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    h.record(v & 0xffff);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
  }
  bench::report_allocs(state, a0);
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

// The contended case: all benchmark threads hammer one histogram, exactly
// what every per-party record() does in a sharded simulator round.
void BM_HistogramRecordContended(benchmark::State& state) {
  static obs::Histogram h;
  std::uint64_t v = static_cast<std::uint64_t>(state.thread_index()) + 1;
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    h.record(v & 0xffff);
    v = v * 2862933555777941757ULL + 3037000493ULL;
  }
  bench::report_allocs(state, a0);
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecordContended)->Threads(4);

void BM_HistogramQuantile(benchmark::State& state) {
  obs::Histogram h;
  for (std::uint64_t v = 0; v < 4096; ++v) h.record(v);
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) benchmark::DoNotOptimize(h.quantile_bound(0.9));
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_HistogramQuantile);

// Handle lookup pays the registry mutex + key canonicalization; the point
// of stable handles is to pay it once, outside the loop. Measured so the
// cost of doing it wrong is a number, not folklore.
void BM_RegistryLookup(benchmark::State& state) {
  obs::Registry reg;
  reg.counter("msgs_sent", {{"protocol", "pi_ba"}});
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.counter("msgs_sent", {{"protocol", "pi_ba"}}));
  }
  bench::report_allocs(state, a0);
}
BENCHMARK(BM_RegistryLookup);

void BM_ReporterAddRow(benchmark::State& state) {
  bench::Reporter rep("micro_obs_rows");
  double x = 0;
  const std::uint64_t a0 = bench::alloc_ops();
  for (auto _ : state) {
    obs::Json m = obs::Json::object();
    m.set("v", x);
    rep.add_row(x += 1.0, std::move(m));
  }
  bench::report_allocs(state, a0);
  benchmark::DoNotOptimize(rep.rows());
}
BENCHMARK(BM_ReporterAddRow);

}  // namespace

int main(int argc, char** argv) {
  return srds::bench::run_micro_suite(argc, argv, "micro_obs");
}

// Experiment "Fig B" — communication locality (max distinct peers any
// single party exchanges messages with) against n. The paper's protocol
// establishes a polylog(n)-degree communication graph; the Θ(n) boosters
// and the star protocol touch (almost) everyone.
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::vector<std::size_t> sizes = args.sizes({64, 128, 256, 512, 1024, 2048});
  const std::uint64_t seed = args.seed_or(202);
  const std::vector<std::pair<BoostProtocol, const char*>> protocols{
      {BoostProtocol::kNaive, "naive"},
      {BoostProtocol::kStar, "acd19-star"},
      {BoostProtocol::kSampling, "ks11-sampling"},
      {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
      {BoostProtocol::kPiBaOwf, "pi_ba/owf"},
  };

  Reporter rep("fig_locality");
  rep.set_param("beta", 0.2);
  rep.set_param("seed", seed);

  print_header("Fig B: boost-phase communication locality (max distinct peers) vs n  [beta=0.2]");
  std::vector<int> widths{16};
  std::vector<std::string> head{"protocol"};
  for (auto n : sizes) {
    head.push_back("n=" + std::to_string(n));
    widths.push_back(10);
  }
  head.push_back("slope");
  widths.push_back(8);
  print_row(head, widths);

  std::vector<obs::Json> per_n;
  per_n.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) per_n.push_back(obs::Json::object());

  for (auto [proto, label] : protocols) {
    std::vector<std::string> cells{label};
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      obs::Ledger ledger;
      BaRunConfig cfg;
      cfg.n = sizes[i];
      cfg.beta = 0.2;
      cfg.seed = seed;
      cfg.protocol = proto;
      cfg.ledger = &ledger;
      cfg.strict_budgets = args.strict_budgets;
      BaRunResult r;
      RepeatStats rs;
      try {
        rs = timed_repeats(args.repeats, [&] { r = run_ba(cfg); });
      } catch (const BudgetViolation& v) {
        std::fprintf(stderr, "%s\n", v.what());
        report_budget_findings(v.findings);
        return 3;
      }
      report_budget_findings(r.budget_evals);
      xs.push_back(static_cast<double>(sizes[i]));
      ys.push_back(static_cast<double>(r.boost_stats.max_locality()));
      cells.push_back(std::to_string(r.boost_stats.max_locality()));
      const obs::PartyStat boost_pp =
          ledger.stat(obs::LedgerField::kBytesTotal, ledger.phase_index("boost"));
      obs::Json m = obs::Json::object();
      m.set("locality", r.boost_stats.max_locality());
      m.set("decided_fraction", r.decided_fraction());
      m.set("max_comm_per_party_bytes", boost_pp.max);
      m.set("p50_comm_per_party_bytes", boost_pp.p50);
      rs.attach(m);
      per_n[i].set(label, std::move(m));
    }
    const double slope = loglog_slope(xs, ys);
    cells.push_back(fmt(slope, 2));
    print_row(cells, widths);
    for (auto& row : per_n) {
      if (auto* entry = row.find(label)) entry->set("slope", slope);
    }
  }

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rep.add_row(static_cast<double>(sizes[i]), std::move(per_n[i]));
  }

  say("\nExpected shape: naive and star pin locality at n-1 (slope ~1); sampling\n"
      "grows like sqrt(n)*log(n). The pi_ba rows stay a constant factor below\n"
      "the full graph and grow with the scaled committee sizes (~2 log n), so\n"
      "their fitted exponent over this small range overstates the asymptotic\n"
      "polylog: log n itself doubles across the sweep. At n=2048 a pi_ba party\n"
      "touches ~2.5x fewer peers than naive; the gap widens with n.\n");
  finish_report(rep, args);
  return 0;
}

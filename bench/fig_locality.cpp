// Experiment "Fig B" — communication locality (max distinct peers any
// single party exchanges messages with) against n. The paper's protocol
// establishes a polylog(n)-degree communication graph; the Θ(n) boosters
// and the star protocol touch (almost) everyone.
#include <cstdio>

#include "ba/runner.hpp"
#include "bench_util.hpp"

int main() {
  using namespace srds;
  using namespace srds::bench;

  const std::vector<std::size_t> sizes{64, 128, 256, 512, 1024, 2048};
  const std::vector<std::pair<BoostProtocol, const char*>> protocols{
      {BoostProtocol::kNaive, "naive"},
      {BoostProtocol::kStar, "acd19-star"},
      {BoostProtocol::kSampling, "ks11-sampling"},
      {BoostProtocol::kPiBaSnark, "pi_ba/snark"},
      {BoostProtocol::kPiBaOwf, "pi_ba/owf"},
  };

  print_header("Fig B: boost-phase communication locality (max distinct peers) vs n  [beta=0.2]");
  std::vector<int> widths{16};
  std::vector<std::string> head{"protocol"};
  for (auto n : sizes) {
    head.push_back("n=" + std::to_string(n));
    widths.push_back(10);
  }
  head.push_back("slope");
  widths.push_back(8);
  print_row(head, widths);

  for (auto [proto, label] : protocols) {
    std::vector<std::string> cells{label};
    std::vector<double> xs, ys;
    for (auto n : sizes) {
      BaRunConfig cfg;
      cfg.n = n;
      cfg.beta = 0.2;
      cfg.seed = 202;
      cfg.protocol = proto;
      auto r = run_ba(cfg);
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(r.boost_stats.max_locality()));
      cells.push_back(std::to_string(r.boost_stats.max_locality()));
    }
    cells.push_back(fmt(loglog_slope(xs, ys), 2));
    print_row(cells, widths);
  }

  std::printf(
      "\nExpected shape: naive and star pin locality at n-1 (slope ~1); sampling\n"
      "grows like sqrt(n)*log(n). The pi_ba rows stay a constant factor below\n"
      "the full graph and grow with the scaled committee sizes (~2 log n), so\n"
      "their fitted exponent over this small range overstates the asymptotic\n"
      "polylog: log n itself doubles across the sweep. At n=2048 a pi_ba party\n"
      "touches ~2.5x fewer peers than naive; the gap widens with n.\n");
  return 0;
}

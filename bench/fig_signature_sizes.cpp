// Experiment "Fig D" — the §1.2 observation that motivates SRDS: the
// *effective* size of a verifiable aggregate signature. Multi-signatures
// aggregate compactly but verification needs the Θ(n)-bit signer set;
// both SRDS constructions keep everything needed for verification Õ(1).
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/multisig.hpp"
#include "srds/counting_multisig.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace {

srds::Bytes message() { return srds::to_bytes("block #12345"); }

std::size_t multisig_size(std::size_t n) {
  using namespace srds;
  MultisigRegistry reg(n, 1);
  Bytes m = message();
  std::vector<std::size_t> signers;
  std::vector<MultisigTag> tags;
  for (std::size_t i = 0; i < n; i += 2) {  // half the parties sign
    signers.push_back(i);
    tags.push_back(reg.sign(i, m));
  }
  return MultisigRegistry::aggregate(n, signers, tags).wire_size();
}

std::size_t owf_size(std::size_t n, srds::BaseSigBackend backend) {
  using namespace srds;
  OwfSrdsParams p;
  p.n_signers = n;
  p.expected_signers = 48;
  p.backend = backend;
  OwfSrds scheme(p, 2);
  for (std::size_t i = 0; i < n; ++i) scheme.keygen(i);
  scheme.finalize_keys();
  Bytes m = message();
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    Bytes s = scheme.sign(i, m);
    if (!s.empty()) sigs.push_back(std::move(s));
  }
  return scheme.aggregate(m, sigs).size();
}

std::size_t counting_multisig_size(std::size_t n) {
  using namespace srds;
  CountingMultisig cms(n, 4);
  Bytes m = message();
  std::vector<std::size_t> signers;
  std::vector<MultisigTag> tags;
  for (std::size_t i = 0; i < n; i += 2) {
    signers.push_back(i);
    tags.push_back(cms.sign(i, m));
  }
  auto cert = cms.aggregate(m, signers, tags);
  return cert.has_value() ? cert->serialize().size() : 0;
}

std::size_t snark_size(std::size_t n) {
  using namespace srds;
  SnarkSrdsParams p;
  p.n_signers = n;
  p.backend = BaseSigBackend::kCompact;
  SnarkSrds scheme(p, 3);
  for (std::size_t i = 0; i < n; ++i) scheme.keygen(i);
  scheme.finalize_keys();
  Bytes m = message();
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < n; ++i) sigs.push_back(scheme.sign(i, m));
  return scheme.aggregate(m, sigs).size();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::vector<std::size_t> sizes = args.sizes({128, 512, 2048, 8192});

  Reporter rep("fig_signature_sizes");

  print_header("Fig D: bytes needed to ship one verifiable aggregate signature vs n");
  std::vector<int> widths{10, 20, 22, 20, 20, 14};
  print_row({"n", "multisig (+bitmap)", "owf-srds (wots)", "owf-srds (compact)",
             "counting-msig", "snark-srds"},
            widths);

  std::vector<double> xs, ms_ys, snark_ys;
  for (auto n : sizes) {
    std::size_t ms = 0, owf_wots = 0, owf_c = 0, cm = 0, sn = 0;
    RepeatStats rs = timed_repeats(args.repeats, [&] {
      ms = multisig_size(n);
      owf_wots = owf_size(n, BaseSigBackend::kWots);
      owf_c = owf_size(n, BaseSigBackend::kCompact);
      cm = counting_multisig_size(n);
      sn = snark_size(n);
    });
    xs.push_back(static_cast<double>(n));
    ms_ys.push_back(static_cast<double>(ms));
    snark_ys.push_back(static_cast<double>(sn));
    print_row({std::to_string(n), fmt_bytes(static_cast<double>(ms)),
               fmt_bytes(static_cast<double>(owf_wots)),
               fmt_bytes(static_cast<double>(owf_c)),
               fmt_bytes(static_cast<double>(cm)),
               fmt_bytes(static_cast<double>(sn))},
              widths);

    obs::Json m = obs::Json::object();
    m.set("multisig_bytes", ms);
    m.set("owf_srds_wots_bytes", owf_wots);
    m.set("owf_srds_compact_bytes", owf_c);
    m.set("counting_multisig_bytes", cm);
    m.set("snark_srds_bytes", sn);
    rs.attach(m);
    rep.add_row(static_cast<double>(n), std::move(m));
  }
  say("\nmultisig growth exponent: %.2f   snark-srds growth exponent: %.2f\n",
      loglog_slope(xs, ms_ys), loglog_slope(xs, snark_ys));
  rep.set_param("multisig_slope", loglog_slope(xs, ms_ys));
  rep.set_param("snark_srds_slope", loglog_slope(xs, snark_ys));
  say("Expected shape: the multisig column grows linearly (the signer bitmap);\n"
      "every other column is flat in n — OWF-SRDS size is set by the polylog\n"
      "sortition parameter; counting-msig (the paper's SNARG connection) and\n"
      "SNARK-SRDS are constant-size proofs. The counting-msig column matches\n"
      "snark-srds in SIZE but cannot be reconstructed incrementally — the\n"
      "aggregator needs the Θ(n)-bit witness (see counting_multisig.hpp).\n");
  finish_report(rep, args);
  return 0;
}

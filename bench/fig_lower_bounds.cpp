// Experiments "LB-1" / "LB-2" — the isolation attacks behind Theorems 1.3
// and 1.4, swept over n: single-round catch-up of an isolated party with
// o(n) messages per party fails without private setup (CRS-only), fails
// with plain signatures, succeeds with an SRDS certificate, and fails again
// if one-way functions are invertible.
#include <cstdio>

#include "bench_util.hpp"
#include "lb/isolation.hpp"

int main(int argc, char** argv) {
  using namespace srds;
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::vector<std::size_t> sizes = args.sizes({128, 256, 512, 1024, 2048});
  const std::uint64_t seed = args.seed_or(100);
  const std::size_t trials = 10;
  const std::vector<BoostSetup> setups{
      BoostSetup::kCrsOnly,
      BoostSetup::kPkiPlainSigs,
      BoostSetup::kPkiSrds,
      BoostSetup::kPkiSrdsInvertedKeys,
  };

  Reporter rep("fig_lower_bounds");
  rep.set_param("trials", trials);
  rep.set_param("seed", seed);

  print_header("LB-1/LB-2: isolated-party fooling rate, single round, fanout=log^2(n)/2, t=n/4");
  std::vector<int> widths{26};
  std::vector<std::string> head{"setup"};
  for (auto n : sizes) {
    head.push_back("n=" + std::to_string(n));
    widths.push_back(10);
  }
  print_row(head, widths);

  std::vector<obs::Json> per_n;
  per_n.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) per_n.push_back(obs::Json::object());

  // Row wall/alloc stats aggregate over the setup cells of one n: medians
  // and allocations add, the noisiest cell's spread stands for the row.
  std::vector<RepeatStats> row_rs(sizes.size());
  for (auto setup : setups) {
    std::vector<std::string> cells{setup_name(setup)};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::size_t n = sizes[i];
      std::size_t fooled = 0;
      RepeatStats rs = timed_repeats(args.repeats, [&, setup = setup] {
        fooled = 0;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          IsolationConfig cfg;
          cfg.n = n;
          cfg.t = n / 4;
          cfg.seed = seed * n + trial;
          fooled += run_isolation_attack(setup, cfg).target_fooled ? 1 : 0;
        }
      });
      row_rs[i].wall_ns_median += rs.wall_ns_median;
      row_rs[i].allocs_per_op += rs.allocs_per_op;
      row_rs[i].spread_rel = std::max(row_rs[i].spread_rel, rs.spread_rel);
      row_rs[i].repeats = rs.repeats;
      cells.push_back(fmt(100.0 * static_cast<double>(fooled) / trials, 0) + "%");
      per_n[i].set(setup_name(setup), static_cast<double>(fooled) / trials);
    }
    print_row(cells, widths);
  }

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    obs::Json m = obs::Json::object();
    m.set("fooling_rate", std::move(per_n[i]));
    row_rs[i].attach(m);
    rep.add_row(static_cast<double>(sizes[i]), std::move(m));
  }

  print_header("Support detail at n=1024 (one trial)");
  std::vector<int> w2{26, 18, 18};
  print_row({"setup", "honest support", "forged support"}, w2);
  for (auto setup : setups) {
    IsolationConfig cfg;
    cfg.n = 1024;
    cfg.t = 256;
    cfg.seed = 9;
    auto out = run_isolation_attack(setup, cfg);
    print_row({setup_name(setup), std::to_string(out.honest_support),
               std::to_string(out.forged_support)},
              w2);
  }

  say("\nExpected shape: 100%% fooling for crs-only and pki-plain-signatures\n"
      "(Theorem 1.3: the Θ(n) adversary outvotes the polylog honest in-degree,\n"
      "with the gap widening in n), 0%% for pki-srds-certificate (what π_ba\n"
      "actually runs), and 100%% again for inverted one-way functions\n"
      "(Theorem 1.4: computational assumptions are necessary).\n");
  finish_report(rep, args);
  return 0;
}

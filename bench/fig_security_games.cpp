// Experiments "Game R" / "Game F" — the paper's security definitions
// (Figures 1 and 2) executed as repeated experiments: empirical adversary
// success rates for a battery of strategies against both SRDS schemes,
// plus the clairvoyant-corruption ablation that shows why oblivious key
// generation matters for the OWF construction.
#include <cstdio>

#include "bench_util.hpp"
#include "srds/games.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace {

using namespace srds;

std::unique_ptr<SrdsScheme> make_scheme(bool owf, std::size_t n_signers,
                                        std::uint64_t seed, std::size_t lambda = 64) {
  if (owf) {
    OwfSrdsParams p;
    p.n_signers = n_signers;
    p.expected_signers = lambda;
    p.backend = BaseSigBackend::kCompact;
    return std::make_unique<OwfSrds>(p, seed);
  }
  SnarkSrdsParams p;
  p.n_signers = n_signers;
  p.backend = BaseSigBackend::kCompact;
  return std::make_unique<SnarkSrds>(p, seed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srds::bench;

  Args args = Args::parse(argc, argv);
  const std::size_t n_parties = args.n_or(200);
  const std::uint64_t seed = args.seed_or(900);
  const std::size_t trials = 15;
  const std::vector<std::pair<AttackStrategy, const char*>> strategies{
      {AttackStrategy::kSilent, "silent"},
      {AttackStrategy::kGarbage, "garbage"},
      {AttackStrategy::kWrongMessage, "wrong-message"},
      {AttackStrategy::kDuplicate, "duplicate-replay"},
      {AttackStrategy::kBestEffort, "best-effort"},
  };

  Reporter rep("fig_security_games");
  rep.set_param("n", n_parties);
  rep.set_param("seed", seed);
  rep.set_param("trials", trials);
  double row_idx = 0;

  print_header("Game R (Fig. 1): robustness — adversary win rate (must be ~0%), n=200, t=10%");
  std::vector<int> widths{20, 20, 20};
  print_row({"strategy", "owf-srds", "snark-srds"}, widths);
  for (auto [strategy, label] : strategies) {
    std::vector<std::string> cells{label};
    obs::Json m = obs::Json::object();
    m.set("game", "robustness");
    m.set("strategy", label);
    RepeatStats rs = timed_repeats(args.repeats, [&, strategy = strategy] {
      cells.resize(1);
      for (bool owf : {true, false}) {
        std::size_t wins = 0;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          CommTree tree = make_game_tree(n_parties, seed + trial);
          auto scheme = make_scheme(owf, tree.virtual_count(), 1700 + trial);
          GameConfig cfg;
          cfg.t = n_parties / 10;
          cfg.strategy = strategy;
          cfg.seed = 2600 + trial;
          wins += run_robustness_game(*scheme, tree, cfg).adversary_wins ? 1 : 0;
        }
        cells.push_back(fmt(100.0 * static_cast<double>(wins) / trials, 1) + "%");
        m.set(owf ? "owf_win_rate" : "snark_win_rate",
              static_cast<double>(wins) / trials);
      }
    });
    rs.attach(m);
    print_row(cells, widths);
    rep.add_row(row_idx++, std::move(m));
  }

  print_header("Game F (Fig. 2): forgery — adversary win rate (must be 0%), |S ∪ I| < n/3");
  print_row({"strategy", "owf-srds", "snark-srds"}, widths);
  for (auto [strategy, label] : strategies) {
    if (strategy == AttackStrategy::kSilent || strategy == AttackStrategy::kBestEffort) {
      continue;  // meaningless as forgeries
    }
    std::vector<std::string> cells{label};
    obs::Json m = obs::Json::object();
    m.set("game", "forgery");
    m.set("strategy", label);
    RepeatStats rs = timed_repeats(args.repeats, [&, strategy = strategy] {
      cells.resize(1);
      for (bool owf : {true, false}) {
        std::size_t wins = 0;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          auto scheme = make_scheme(owf, 180, 3500 + trial);
          GameConfig cfg;
          cfg.t = 59;  // maximal corruption below n/3
          cfg.strategy = strategy;
          cfg.seed = 4400 + trial;
          wins += run_forgery_game(*scheme, cfg).adversary_wins ? 1 : 0;
        }
        cells.push_back(fmt(100.0 * static_cast<double>(wins) / trials, 1) + "%");
        m.set(owf ? "owf_win_rate" : "snark_win_rate",
              static_cast<double>(wins) / trials);
      }
    });
    rs.attach(m);
    print_row(cells, widths);
    rep.add_row(row_idx++, std::move(m));
  }

  print_header("Ablation: corruption selector vs OWF-SRDS robustness (t = 20%, lambda = 100)");
  print_row({"selector", "owf-srds win rate", ""}, widths);
  for (auto [selector, label] :
       std::vector<std::pair<CorruptionSelector, const char*>>{
           {CorruptionSelector::kRandom, "random (model)"},
           {CorruptionSelector::kClairvoyant, "clairvoyant (broken keygen)"}}) {
    std::size_t wins = 0;
    RepeatStats rs = timed_repeats(args.repeats, [&, selector = selector] {
      wins = 0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        // Run at 2x the population: the concentration margins (tree goodness
        // and sortition) sharpen with n, isolating the selector effect.
        const std::size_t n_ablation = 2 * n_parties;
        CommTree tree = make_game_tree(n_ablation, 5200 + trial);
        auto scheme = make_scheme(true, tree.virtual_count(), 6100 + trial, 100);
        GameConfig cfg;
        cfg.t = n_ablation / 5;
        cfg.strategy = AttackStrategy::kWrongMessage;
        cfg.selector = selector;
        cfg.seed = 7000 + trial;
        wins += run_robustness_game(*scheme, tree, cfg).adversary_wins ? 1 : 0;
      }
    });
    print_row({label, fmt(100.0 * static_cast<double>(wins) / trials, 1) + "%", ""},
              widths);
    obs::Json m = obs::Json::object();
    m.set("game", "selector-ablation");
    m.set("selector", label);
    m.set("owf_win_rate", static_cast<double>(wins) / trials);
    rs.attach(m);
    rep.add_row(row_idx++, std::move(m));
  }

  say("\nExpected shape: ~0%% win rates in both games for every strategy, and a\n"
      "stark selector contrast in the ablation — the clairvoyant adversary (who\n"
      "can see sortition outcomes, i.e. a *broken* oblivious keygen) wins almost\n"
      "always while the model's assignment-blind adversary almost never does.\n"
      "That gap is why hiding signing ability inside the trusted PKI is\n"
      "load-bearing for the OWF construction.\n");
  finish_report(rep, args);
  return 0;
}
